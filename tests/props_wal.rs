//! Property tests on the write-ahead event log (durability tentpole):
//! a reopened kernel is *serde-identical* to the live one for any
//! random sequence of committed mutations, under any group-commit and
//! snapshot cadence; a torn log tail is dropped cleanly; a corrupted
//! record is detected (not silently replayed) and recovery keeps the
//! valid prefix.
//!
//! CI runs this file in the `props` job at `PROPTEST_CASES=256`.

use gaea::adt::{TypeTag, Value};
use gaea::core::kernel::{ClassSpec, DurabilityOptions, Gaea, ProcessSpec, WalCodec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::ObjectId;
use proptest::prelude::*;
use std::fs::OpenOptions;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static DIRS: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory, unique per test invocation.
fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gaea-walprop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kernel schema every test uses: base `obs {v}`, derived `dbl {v}`,
/// and a local mapping process `COPY: obs → dbl`.
fn define_schema(g: &mut Gaea) {
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
        .unwrap();
    g.define_class(
        ClassSpec::derived("dbl")
            .attr("v", TypeTag::Int4)
            .no_extents(),
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("COPY", "dbl")
            .arg("x", "obs")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "v".into(),
                    expr: Expr::proj("x", "v"),
                }],
            }),
    )
    .unwrap();
}

/// Serialize a kernel's full persistent state (store manifest +
/// catalog) through [`Gaea::save`] and return both documents. Two
/// kernels whose digests match are indistinguishable to every
/// downstream consumer of the persistence format.
fn state_digest(g: &Gaea, tag: &str) -> (String, String) {
    let scratch = fresh_dir(tag);
    g.save(&scratch).unwrap();
    let manifest = std::fs::read_to_string(scratch.join("manifest.json")).unwrap();
    let catalog = std::fs::read_to_string(scratch.join("catalog.json")).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
    (manifest, catalog)
}

// ----------------------------------------------------------------------
// Random event sequences: replay ≡ live state
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i32),
    Update(usize, i32),
    Delete(usize),
    Fire(usize),
    Index,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i32>().prop_map(Op::Insert),
        2 => ((0usize..32), any::<i32>()).prop_map(|(i, v)| Op::Update(i, v)),
        1 => (0usize..32).prop_map(Op::Delete),
        2 => (0usize..32).prop_map(Op::Fire),
        1 => Just(Op::Index),
        1 => Just(Op::Checkpoint),
    ]
}

/// Apply one op against the kernel, tracking live `obs` oids so update
/// / delete / fire always target an existing object.
fn apply(g: &mut Gaea, live: &mut Vec<ObjectId>, op: &Op) {
    match op {
        Op::Insert(v) => {
            let oid = g
                .insert_object("obs", vec![("v", Value::Int4(*v))])
                .unwrap();
            live.push(oid);
        }
        Op::Update(i, v) => {
            if !live.is_empty() {
                let oid = live[i % live.len()];
                g.update_object(oid, vec![("v", Value::Int4(*v))]).unwrap();
            }
        }
        Op::Delete(i) => {
            if !live.is_empty() {
                let oid = live.remove(i % live.len());
                g.delete_object(oid).unwrap();
            }
        }
        Op::Fire(i) => {
            if !live.is_empty() {
                let oid = live[i % live.len()];
                g.run_process("COPY", &[("x", vec![oid])]).unwrap();
            }
        }
        Op::Index => g.define_index("obs", "v").unwrap(),
        Op::Checkpoint => g.checkpoint().unwrap(),
    }
}

proptest! {
    /// Any committed op sequence, any fsync batch size, any snapshot
    /// cadence: reopening the directory reconstructs the exact live
    /// state — relations, versions, oid allocator, catalog, tasks.
    #[test]
    fn replay_reconstructs_live_state(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        fsync_every in 1u64..8,
        snapshot_every in prop_oneof![Just(0u64), 1u64..6],
    ) {
        let dir = fresh_dir("replay");
        let options = DurabilityOptions { fsync_every, snapshot_every, ..Default::default() };
        let mut g = Gaea::open_with(&dir, options).unwrap();
        define_schema(&mut g);
        let mut live = Vec::new();
        for op in &ops {
            apply(&mut g, &mut live, op);
        }
        let before = state_digest(&g, "live");
        drop(g); // flushes any batched tail
        let g2 = Gaea::open_with(&dir, options).unwrap();
        let stats = g2.recovery_stats().unwrap();
        prop_assert!(!stats.wal_corrupt);
        prop_assert_eq!(stats.wal_dropped_bytes, 0);
        let after = state_digest(&g2, "replayed");
        prop_assert_eq!(&before.0, &after.0, "store manifest diverged after replay");
        prop_assert_eq!(&before.1, &after.1, "catalog diverged after replay");
        drop(g2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Recovery composes: open → mutate → reopen → mutate → reopen is
    /// indistinguishable from one uninterrupted kernel performing the
    /// same ops (allocators and sequence counters resume exactly).
    #[test]
    fn recovery_survives_repeated_reopens(
        first in proptest::collection::vec(op_strategy(), 1..15),
        second in proptest::collection::vec(op_strategy(), 1..15),
    ) {
        let dir = fresh_dir("reopen");
        let options = DurabilityOptions { fsync_every: 1, snapshot_every: 4, ..Default::default() };

        // Interrupted run: restart between the two op batches.
        let mut g = Gaea::open_with(&dir, options).unwrap();
        define_schema(&mut g);
        let mut live = Vec::new();
        for op in &first {
            apply(&mut g, &mut live, op);
        }
        drop(g);
        let mut g = Gaea::open_with(&dir, options).unwrap();
        for op in &second {
            apply(&mut g, &mut live, op);
        }
        let interrupted = state_digest(&g, "interrupted");
        drop(g);

        // Twin: same ops, no restart, no durability at all.
        let mut t = Gaea::in_memory();
        define_schema(&mut t);
        let mut live = Vec::new();
        for op in first.iter().chain(&second) {
            if matches!(op, Op::Checkpoint) {
                continue; // no-op without a log
            }
            apply(&mut t, &mut live, op);
        }
        let twin = state_digest(&t, "twin");
        prop_assert_eq!(&interrupted.0, &twin.0, "manifest diverged from uninterrupted twin");
        prop_assert_eq!(&interrupted.1, &twin.1, "catalog diverged from uninterrupted twin");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Codec equivalence: the same op sequence journaled under the
    /// binary codec and under the legacy JSON codec replays to
    /// serde-identical kernels — the record encoding is invisible to
    /// everything above the log.
    #[test]
    fn binary_and_json_codecs_replay_identically(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        let mut digests = Vec::new();
        for codec in [WalCodec::Binary, WalCodec::Json] {
            let dir = fresh_dir("codec");
            let options = DurabilityOptions {
                fsync_every: 1,
                snapshot_every: 0, // every event stays in the log
                codec,
                ..Default::default()
            };
            let mut g = Gaea::open_with(&dir, options).unwrap();
            define_schema(&mut g);
            let mut live = Vec::new();
            for op in &ops {
                apply(&mut g, &mut live, op);
            }
            let before = state_digest(&g, "codec-live");
            drop(g);
            let g2 = Gaea::open_with(&dir, options).unwrap();
            prop_assert!(!g2.recovery_stats().unwrap().wal_corrupt);
            let after = state_digest(&g2, "codec-replayed");
            prop_assert_eq!(&before.0, &after.0, "manifest diverged under {:?}", codec);
            prop_assert_eq!(&before.1, &after.1, "catalog diverged under {:?}", codec);
            digests.push(after);
            drop(g2);
            let _ = std::fs::remove_dir_all(&dir);
        }
        prop_assert_eq!(&digests[0].0, &digests[1].0, "codecs replay to different manifests");
        prop_assert_eq!(&digests[0].1, &digests[1].1, "codecs replay to different catalogs");
    }

    /// Mixed-format logs: a JSON prefix (a log written before the
    /// binary codec, or under `WalCodec::Json`) continued with binary
    /// records recovers serde-identically to an uninterrupted kernel —
    /// format dispatch is per record, not per log.
    #[test]
    fn mixed_format_log_replays_seamlessly(
        first in proptest::collection::vec(op_strategy(), 1..15),
        second in proptest::collection::vec(op_strategy(), 1..15),
    ) {
        let dir = fresh_dir("mixed");
        // No snapshots: a checkpoint would fold the JSON prefix away
        // and the log would no longer be mixed.
        let no_ckpt = |ops: &[Op]| -> Vec<Op> {
            ops.iter().filter(|o| !matches!(o, Op::Checkpoint)).cloned().collect()
        };
        let (first, second) = (no_ckpt(&first), no_ckpt(&second));
        let base = DurabilityOptions { fsync_every: 1, snapshot_every: 0, ..Default::default() };

        let mut g = Gaea::open_with(&dir, DurabilityOptions { codec: WalCodec::Json, ..base }).unwrap();
        define_schema(&mut g);
        let mut live = Vec::new();
        for op in &first {
            apply(&mut g, &mut live, op);
        }
        drop(g);
        let mut g = Gaea::open_with(&dir, DurabilityOptions { codec: WalCodec::Binary, ..base }).unwrap();
        for op in &second {
            apply(&mut g, &mut live, op);
        }
        let mixed = state_digest(&g, "mixed-live");
        drop(g);

        // The mixed log replays in full (no snapshot shortcut), under
        // either codec setting — decode ignores the option.
        for codec in [WalCodec::Binary, WalCodec::Json] {
            let g = Gaea::open_with(&dir, DurabilityOptions { codec, ..base }).unwrap();
            let stats = g.recovery_stats().unwrap();
            prop_assert!(!stats.wal_corrupt);
            prop_assert_eq!(stats.snapshot_seq, 0, "mixed log must have no snapshot");
            let replayed = state_digest(&g, "mixed-replayed");
            prop_assert_eq!(&mixed.0, &replayed.0, "manifest diverged replaying mixed log");
            prop_assert_eq!(&mixed.1, &replayed.1, "catalog diverged replaying mixed log");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ----------------------------------------------------------------------
// Damaged logs: torn tails and corrupted records
// ----------------------------------------------------------------------

/// Seed a durable kernel with the schema plus `n` inserts and return
/// the directory. `snapshot_every: 0` keeps every event in the log so
/// the damage tests control exactly what replay sees.
fn seeded_dir(tag: &str, n: i32) -> PathBuf {
    let dir = fresh_dir(tag);
    let options = DurabilityOptions {
        fsync_every: 1,
        snapshot_every: 0,
        ..Default::default()
    };
    let mut g = Gaea::open_with(&dir, options).unwrap();
    define_schema(&mut g);
    for v in 0..n {
        g.insert_object("obs", vec![("v", Value::Int4(v))]).unwrap();
    }
    dir
}

fn obs_count(g: &Gaea) -> usize {
    g.objects_of("obs").unwrap().len()
}

/// Byte offset where record `n` (0-based) starts, by walking the
/// length prefixes.
fn record_offset(log: &Path, n: usize) -> u64 {
    let bytes = std::fs::read(log).unwrap();
    let mut off = 0usize;
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
    }
    off as u64
}

/// A crash mid-append leaves a half-written record; recovery drops the
/// torn tail, keeps every complete event, and the log stays appendable.
#[test]
fn torn_tail_is_dropped_cleanly() {
    let dir = seeded_dir("torn", 5);
    let log = dir.join("wal.log");
    let len = std::fs::metadata(&log).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&log)
        .unwrap()
        .set_len(len - 3) // tear the last record's tail off
        .unwrap();

    let mut g = Gaea::open(&dir).unwrap();
    let stats = g.recovery_stats().unwrap().clone();
    assert!(!stats.wal_corrupt, "a torn tail is not corruption");
    assert!(stats.wal_dropped_bytes > 0);
    // 3 schema events + 5 inserts, minus the torn final insert.
    assert_eq!(stats.events_replayed, 7);
    assert_eq!(obs_count(&g), 4);

    // The truncated log accepts new events and replays them.
    g.insert_object("obs", vec![("v", Value::Int4(99))])
        .unwrap();
    drop(g);
    let g = Gaea::open(&dir).unwrap();
    let stats = g.recovery_stats().unwrap();
    assert_eq!(stats.wal_dropped_bytes, 0);
    assert_eq!(obs_count(&g), 5);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte inside a record's payload fails the CRC: recovery
/// reports corruption, replays only the prefix before the damaged
/// record, and discards everything after it.
#[test]
fn checksum_corruption_is_detected() {
    let dir = seeded_dir("crc", 5);
    let log = dir.join("wal.log");
    // Damage the payload of record 4 (the second insert): records 0-2
    // are the schema, record 3 the first insert.
    let off = record_offset(&log, 4) + 8 + 2;
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&log)
        .unwrap();
    f.seek(SeekFrom::Start(off)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(off)).unwrap();
    f.write_all(&[b[0] ^ 0xFF]).unwrap();
    drop(f);

    let g = Gaea::open(&dir).unwrap();
    let stats = g.recovery_stats().unwrap();
    assert!(stats.wal_corrupt, "flipped payload byte must fail the CRC");
    assert!(stats.wal_dropped_bytes > 0);
    assert_eq!(
        stats.events_replayed, 4,
        "only the prefix before the damage replays"
    );
    assert_eq!(obs_count(&g), 1);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deleting the log entirely falls back to the latest snapshot alone.
#[test]
fn snapshot_alone_recovers_when_log_is_lost() {
    let dir = fresh_dir("snaponly");
    let options = DurabilityOptions {
        fsync_every: 1,
        snapshot_every: 0,
        ..Default::default()
    };
    let mut g = Gaea::open_with(&dir, options).unwrap();
    define_schema(&mut g);
    for v in 0..4 {
        g.insert_object("obs", vec![("v", Value::Int4(v))]).unwrap();
    }
    g.checkpoint().unwrap();
    drop(g);
    std::fs::remove_file(dir.join("wal.log")).unwrap();

    let g = Gaea::open(&dir).unwrap();
    let stats = g.recovery_stats().unwrap();
    assert_eq!(stats.events_replayed, 0);
    assert!(stats.snapshot_seq > 0);
    assert_eq!(obs_count(&g), 4);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}
