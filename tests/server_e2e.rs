//! End-to-end exercises of the multi-session server: handshake,
//! read/write visibility across sessions, admission control, protocol
//! errors, job round-trips, and graceful shutdown with a clean WAL.

use gaea::adt::Value;
use gaea::core::kernel::{ClassSpec, Gaea};
use gaea::server::{Client, ClientError, Server, ServerConfig};
use std::time::Duration;

/// A running in-process server plus the thread that serves it.
struct Harness {
    addr: String,
    thread: std::thread::JoinHandle<gaea::server::ServerReport>,
}

fn start(kernel: Gaea, config: ServerConfig) -> Harness {
    let server = Server::bind(kernel, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let thread = std::thread::spawn(move || server.run());
    Harness { addr, thread }
}

fn seeded_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", gaea::adt::TypeTag::Int4))
        .unwrap();
    for v in 0..4 {
        g.insert_object("obs", vec![("v", Value::Int4(v))]).unwrap();
    }
    g
}

#[test]
fn sessions_share_one_kernel_with_read_write_visibility() {
    let h = start(seeded_kernel(), ServerConfig::default());

    let mut writer = Client::connect(&h.addr, "writer").unwrap();
    let mut reader = Client::connect(&h.addr, "reader").unwrap();

    // Both see the seed.
    assert_eq!(
        reader
            .retrieve("RETRIEVE * FROM obs")
            .unwrap()
            .objects
            .len(),
        4
    );

    // A write in one session is visible to a fresh read in the other.
    writer
        .insert("obs", vec![("v".into(), Value::Int4(99))])
        .unwrap();
    let after = reader.retrieve("RETRIEVE * FROM obs").unwrap();
    assert_eq!(after.objects.len(), 5);

    // DDL over the wire, then data through it.
    writer
        .define("CLASS readings ( ATTRIBUTES: t = int4; )")
        .unwrap();
    writer
        .insert("readings", vec![("t".into(), Value::Int4(1))])
        .unwrap();
    assert_eq!(
        reader
            .retrieve("RETRIEVE * FROM readings")
            .unwrap()
            .objects
            .len(),
        1
    );

    // Update round-trips too.
    let oid = writer
        .insert("obs", vec![("v".into(), Value::Int4(7))])
        .unwrap();
    writer
        .update(oid, vec![("v".into(), Value::Int4(8))])
        .unwrap();
    let vals = reader.retrieve("RETRIEVE * FROM obs WHERE v = 8").unwrap();
    assert_eq!(vals.objects.len(), 1);

    reader.goodbye().unwrap();
    let stats = writer.stats().unwrap();
    assert!(stats.reads_pinned >= 3, "reads must run pinned: {stats:?}");
    assert!(stats.writes_serialized >= 4);
    assert_eq!(stats.protocol_errors, 0);
    writer.shutdown_server().unwrap();
    let report = h.thread.join().unwrap();
    assert!(report.wal_flush.is_ok());
    assert_eq!(report.stats.protocol_errors, 0);
}

#[test]
fn admission_control_refuses_the_session_over_the_limit() {
    let h = start(
        seeded_kernel(),
        ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        },
    );

    let a = Client::connect(&h.addr, "a").unwrap();
    let b = Client::connect(&h.addr, "b").unwrap();
    // Third session: refused with a server error, not a hang.
    match Client::connect(&h.addr, "c") {
        Err(ClientError::Server(m)) => assert!(m.contains("admission"), "{m}"),
        other => panic!("expected admission refusal, got {other:?}"),
    }
    // Closing one frees a slot.
    a.goodbye().unwrap();
    // The registry entry clears when the session thread exits; give it
    // a moment before retrying.
    let mut admitted = None;
    for _ in 0..100 {
        match Client::connect(&h.addr, "c") {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let mut c = admitted.expect("slot freed by goodbye");
    let stats = c.stats().unwrap();
    assert!(stats.sessions_refused >= 1);
    c.ping().unwrap();

    b.shutdown_server().unwrap();
    let report = h.thread.join().unwrap();
    assert!(report.stats.sessions_refused >= 1);
}

#[test]
fn protocol_garbage_is_counted_and_the_session_is_closed() {
    use std::io::{Read, Write};
    let h = start(seeded_kernel(), ServerConfig::default());

    // A raw socket that violates framing: declares 8 payload bytes of
    // non-JSON with a bogus kind byte.
    {
        let mut raw = std::net::TcpStream::connect(&h.addr).unwrap();
        raw.write_all(&8u32.to_be_bytes()).unwrap();
        raw.write_all(&[0x7f]).unwrap();
        raw.write_all(b"garbage!").unwrap();
        // Server answers with an Error frame and closes; draining to EOF
        // proves the close.
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink);
    }

    let mut c = Client::connect(&h.addr, "after").unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.protocol_errors >= 1, "{stats:?}");
    // The kernel is unharmed.
    assert_eq!(c.retrieve("RETRIEVE * FROM obs").unwrap().objects.len(), 4);
    c.shutdown_server().unwrap();
    h.thread.join().unwrap();
}

#[test]
fn kernel_errors_keep_the_session_usable() {
    let h = start(seeded_kernel(), ServerConfig::default());
    let mut c = Client::connect(&h.addr, "errs").unwrap();

    // Unknown class: a kernel error, not a protocol error.
    match c.retrieve("RETRIEVE * FROM nowhere") {
        Err(ClientError::Server(m)) => assert!(m.contains("nowhere")),
        other => panic!("expected kernel error, got {other:?}"),
    }
    // Syntax error: same.
    assert!(matches!(
        c.retrieve("RETRIEVE FROM FROM"),
        Err(ClientError::Server(_))
    ));
    // The session still answers.
    assert_eq!(c.retrieve("RETRIEVE * FROM obs").unwrap().objects.len(), 4);
    let stats = c.stats().unwrap();
    assert_eq!(stats.protocol_errors, 0);

    // An unknown job id errors without killing the session.
    assert!(matches!(c.job_status(424242), Err(ClientError::Server(_))));
    assert!(matches!(c.cancel_job(424242), Err(ClientError::Server(_))));
    c.ping().unwrap();
    c.shutdown_server().unwrap();
    h.thread.join().unwrap();
}

#[test]
fn durable_shutdown_leaves_a_clean_wal() {
    let dir = std::env::temp_dir().join(format!("gaea-server-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let kernel = Gaea::open(&dir).unwrap();
        let h = start(kernel, ServerConfig::default());
        let mut c = Client::connect(&h.addr, "durable").unwrap();
        c.define("CLASS samples ( ATTRIBUTES: v = int4; )").unwrap();
        for v in 0..16 {
            c.insert("samples", vec![("v".into(), Value::Int4(v))])
                .unwrap();
        }
        c.shutdown_server().unwrap();
        let report = h.thread.join().unwrap();
        assert!(report.wal_flush.is_ok(), "{:?}", report.wal_flush);
    }
    // Reopen: everything replays, nothing was torn or dropped.
    let g = Gaea::open(&dir).unwrap();
    let stats = g.recovery_stats().expect("durable reopen has stats");
    assert!(!stats.wal_corrupt);
    assert_eq!(stats.wal_dropped_bytes, 0);
    let view = g.read_view();
    let q =
        gaea::core::Query::class("samples").with_strategy(gaea::core::QueryStrategy::RetrieveOnly);
    assert_eq!(view.query(&q).unwrap().objects.len(), 16);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_jobs_round_trip_over_the_wire() {
    // Schema with a derivable class so DERIVE ASYNC has something to do
    // is heavyweight; the job surface is exercised against the error
    // path above and the happy path in the kernel's own suites. Here:
    // await on an unknown job errs fast and Stats reflects the mix.
    let h = start(seeded_kernel(), ServerConfig::default());
    let mut c = Client::connect(&h.addr, "jobs").unwrap();
    match c.await_job(555, Duration::from_millis(20)) {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected unknown-job error, got {other:?}"),
    }
    assert!(matches!(c.job_status(555), Err(ClientError::Server(_))));
    c.shutdown_server().unwrap();
    h.thread.join().unwrap();
}

#[test]
fn a_hostile_await_timeout_neither_panics_nor_leaks_the_slot() {
    let h = start(
        seeded_kernel(),
        ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        },
    );
    {
        let mut c = Client::connect(&h.addr, "hostile").unwrap();
        // u64::MAX ms once overflowed the server's deadline arithmetic,
        // panicking the session thread past the slot release. Now it is
        // clamped; the unknown job errors fast either way.
        match c.await_job(999, Duration::from_millis(u64::MAX)) {
            Err(ClientError::Server(_)) => {}
            other => panic!("expected unknown-job error, got {other:?}"),
        }
        c.goodbye().unwrap();
    }
    // The only admission slot is free again — a leaked slot would make
    // every reconnect bounce off admission control forever.
    let mut again = None;
    for _ in 0..100 {
        match Client::connect(&h.addr, "again") {
            Ok(c) => {
                again = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let mut c = again.expect("slot released after hostile await");
    c.ping().unwrap();
    c.shutdown_server().unwrap();
    h.thread.join().unwrap();
}

#[test]
fn idle_sessions_are_disconnected() {
    let h = start(
        seeded_kernel(),
        ServerConfig {
            idle_timeout: Duration::from_millis(60),
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(&h.addr, "sloth").unwrap();
    c.ping().unwrap();
    std::thread::sleep(Duration::from_millis(250));
    // The server hung up while we slept; the next call fails on the
    // transport rather than hanging.
    assert!(c.ping().is_err());

    let mut fresh = Client::connect(&h.addr, "awake").unwrap();
    let stats = fresh.stats().unwrap();
    // An idle disconnect is session lifecycle, not a protocol error.
    assert_eq!(stats.protocol_errors, 0);
    fresh.shutdown_server().unwrap();
    h.thread.join().unwrap();
}
