//! Experiment Q3 — the §1 two-scientists scenario and the §4.2 lineage
//! claims: browsing derivation relationships, comparing derivation
//! procedures, and detecting duplicated work.

use gaea::adt::{AbsTime, GeoBox, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::workload::ndvi_series;

fn change_template(op: &str) -> Template {
    Template {
        assertions: vec![],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    op,
                    vec![Expr::proj("later", "data"), Expr::proj("earlier", "data")],
                ),
            },
            Mapping {
                attr: "spatialextent".into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("later", "spatialextent"))),
            },
            Mapping {
                attr: "timestamp".into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("later", "timestamp"))),
            },
        ],
    }
}

/// Kernel with ndvi + veg_change and the two scientists' processes.
fn scenario() -> (Gaea, gaea::core::ObjectId, gaea::core::ObjectId) {
    let mut g = Gaea::in_memory().with_user("hachem");
    g.define_class(ClassSpec::base("ndvi").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(ClassSpec::derived("veg_change").attr("data", TypeTag::Image))
        .unwrap();
    g.define_process(
        ProcessSpec::new("change_by_difference", "veg_change")
            .arg("earlier", "ndvi")
            .arg("later", "ndvi")
            .template(change_template("img_diff")),
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("change_by_ratio", "veg_change")
            .arg("earlier", "ndvi")
            .arg("later", "ndvi")
            .template(change_template("img_ratio")),
    )
    .unwrap();
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let series = ndvi_series(8, 8, 24, AbsTime::from_ymd(1988, 1, 1).unwrap(), -0.05, 7);
    let mut ids = Vec::new();
    for idx in [6usize, 18] {
        let (t, img) = &series[idx];
        ids.push(
            g.insert_object(
                "ndvi",
                vec![
                    ("data", Value::image(img.clone())),
                    ("spatialextent", Value::GeoBox(africa)),
                    ("timestamp", Value::AbsTime(*t)),
                ],
            )
            .unwrap(),
        );
    }
    (g, ids[0], ids[1])
}

#[test]
fn two_scientists_same_inputs_different_derivations() {
    let (mut g, o88, o89) = scenario();
    let a = g
        .run_process(
            "change_by_difference",
            &[("earlier", vec![o88]), ("later", vec![o89])],
        )
        .unwrap();
    g.set_user("qiu");
    let b = g
        .run_process(
            "change_by_ratio",
            &[("earlier", vec![o88]), ("later", vec![o89])],
        )
        .unwrap();
    let (oa, ob) = (a.outputs[0], b.outputs[0]);
    // Same ancestors, different derivation, different data.
    assert_eq!(g.ancestors(oa).unwrap(), g.ancestors(ob).unwrap());
    assert!(!g.same_derivation(oa, ob).unwrap());
    assert_ne!(
        g.object(oa).unwrap().attr("data"),
        g.object(ob).unwrap().attr("data")
    );
    // Signatures carry the process names, so sharing is meaningful.
    let sig_a = g.lineage(oa).unwrap().signature();
    let sig_b = g.lineage(ob).unwrap().signature();
    assert!(sig_a.contains("change_by_difference"), "{sig_a}");
    assert!(sig_b.contains("change_by_ratio"), "{sig_b}");
    // Attribution survives.
    let ta = g.catalog().producing_task(oa).unwrap();
    let tb = g.catalog().producing_task(ob).unwrap();
    assert_eq!(ta.user, "hachem");
    assert_eq!(tb.user, "qiu");
}

#[test]
fn identical_reruns_are_detected_as_duplicates() {
    let (mut g, o88, o89) = scenario();
    g.run_process(
        "change_by_difference",
        &[("earlier", vec![o88]), ("later", vec![o89])],
    )
    .unwrap();
    assert!(g.duplicate_tasks().is_empty());
    // A second scientist repeats the exact derivation.
    g.set_user("qiu");
    g.run_process(
        "change_by_difference",
        &[("earlier", vec![o88]), ("later", vec![o89])],
    )
    .unwrap();
    let dups = g.duplicate_tasks();
    assert_eq!(dups.len(), 1);
    assert_eq!(dups[0].len(), 2);
    // Swapped arguments are NOT a duplicate (different derivation).
    g.run_process(
        "change_by_difference",
        &[("earlier", vec![o89]), ("later", vec![o88])],
    )
    .unwrap();
    assert_eq!(g.duplicate_tasks().len(), 1);
}

#[test]
fn descendants_answer_impact_queries() {
    // If a base NDVI composite is corrected, which products are affected?
    let (mut g, o88, o89) = scenario();
    let a = g
        .run_process(
            "change_by_difference",
            &[("earlier", vec![o88]), ("later", vec![o89])],
        )
        .unwrap();
    let b = g
        .run_process(
            "change_by_ratio",
            &[("earlier", vec![o88]), ("later", vec![o89])],
        )
        .unwrap();
    let mut impacted = g.descendants(o88);
    impacted.sort();
    let mut expect = vec![a.outputs[0], b.outputs[0]];
    expect.sort();
    assert_eq!(impacted, expect);
    // Base objects have no producing task; derived ones do.
    assert!(g.catalog().producing_task(o88).is_none());
    assert!(g.catalog().producing_task(a.outputs[0]).is_some());
}

#[test]
fn deep_lineage_chains() {
    // change-of-change: derivations stack and the tree reports depth.
    let (mut g, o88, o89) = scenario();
    let a = g
        .run_process(
            "change_by_difference",
            &[("earlier", vec![o88]), ("later", vec![o89])],
        )
        .unwrap();
    // Register a second-order process: difference of change maps.
    g.define_process(
        ProcessSpec::new("change_of_change", "veg_change")
            .arg("earlier", "veg_change")
            .arg("later", "veg_change")
            .template(change_template("img_diff")),
    )
    .unwrap();
    let b = g
        .run_process(
            "change_by_ratio",
            &[("earlier", vec![o88]), ("later", vec![o89])],
        )
        .unwrap();
    let cc = g
        .run_process(
            "change_of_change",
            &[
                ("earlier", vec![a.outputs[0]]),
                ("later", vec![b.outputs[0]]),
            ],
        )
        .unwrap();
    let tree = g.lineage(cc.outputs[0]).unwrap();
    assert_eq!(tree.depth(), 3);
    assert_eq!(tree.size(), 7); // cc + 2 changes + 4 ndvi leaf references
    let rendered = tree.render();
    assert!(rendered.contains("change_of_change"));
    assert!(rendered.contains("[base data]"));
}
