//! End-to-end coverage of the `gaea-sched` derivation scheduler:
//! `Gaea::refresh_all` over the stale impact set (fan-out, diamonds,
//! chains, skips), `Gaea::derive_parallel`, and the query pipeline's
//! wave-based fire stage — plus the invariant the whole design rides
//! on: the committed state is identical for every worker count.
//!
//! Worker counts are set explicitly in every test (the CI matrix also
//! runs the entire suite under `GAEA_SCHED_WORKERS=4`, which
//! `Gaea::in_memory` picks up, exercising the parallel path through all
//! the *other* suites).

use gaea::adt::{TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{ObjectId, Query, QueryMethod, QueryStrategy};

/// A one-mapping template copying `v` from `arg`.
fn copy_v(arg: &str) -> Template {
    Template {
        assertions: vec![],
        mappings: vec![Mapping {
            attr: "v".into(),
            expr: Expr::proj(arg, "v"),
        }],
    }
}

fn int_class(g: &mut Gaea, name: &str, base: bool) {
    let spec = if base {
        ClassSpec::base(name)
    } else {
        ClassSpec::derived(name)
    };
    g.define_class(spec.attr("v", TypeTag::Int4).no_extents())
        .unwrap();
}

/// Fan-out fixture: base `src` --STEP--> derived `out`, `v` copied.
fn fan_kernel(workers: usize) -> Gaea {
    let mut g = Gaea::in_memory();
    g.set_workers(workers);
    int_class(&mut g, "src", true);
    int_class(&mut g, "out", false);
    g.define_process(
        ProcessSpec::new("STEP", "out")
            .arg("x", "src")
            .template(copy_v("x")),
    )
    .unwrap();
    g
}

fn insert_v(g: &mut Gaea, class: &str, v: i32) -> ObjectId {
    g.insert_object(class, vec![("v", Value::Int4(v))]).unwrap()
}

fn set_v(g: &mut Gaea, obj: ObjectId, v: i32) {
    g.update_object(obj, vec![("v", Value::Int4(v))]).unwrap();
}

fn v_of(g: &Gaea, obj: ObjectId) -> i32 {
    match g.object(obj).unwrap().attr("v") {
        Some(Value::Int4(v)) => *v,
        other => panic!("expected Int4 v, got {other:?}"),
    }
}

/// Diamond fixture: base `z` --PA--> `a` --PB/PC--> `b`,`c` --PD--> `d`.
fn diamond_kernel(workers: usize) -> Gaea {
    let mut g = Gaea::in_memory();
    g.set_workers(workers);
    int_class(&mut g, "z", true);
    for c in ["a", "b", "c", "d"] {
        int_class(&mut g, c, false);
    }
    for (proc_name, out, arg_class) in [("PA", "a", "z"), ("PB", "b", "a"), ("PC", "c", "a")] {
        g.define_process(
            ProcessSpec::new(proc_name, out)
                .arg("src", arg_class)
                .template(copy_v("src")),
        )
        .unwrap();
    }
    g.define_process(
        ProcessSpec::new("PD", "d")
            .arg("x", "b")
            .arg("y", "c")
            .template(copy_v("x")),
    )
    .unwrap();
    g
}

/// Fire the whole diamond once; returns (z, [a, b, c, d]) object ids.
fn fire_diamond(g: &mut Gaea) -> (ObjectId, [ObjectId; 4]) {
    let z = insert_v(g, "z", 7);
    let a = g.run_process("PA", &[("src", vec![z])]).unwrap().outputs[0];
    let b = g.run_process("PB", &[("src", vec![a])]).unwrap().outputs[0];
    let c = g.run_process("PC", &[("src", vec![a])]).unwrap().outputs[0];
    let d = g
        .run_process("PD", &[("x", vec![b]), ("y", vec![c])])
        .unwrap()
        .outputs[0];
    (z, [a, b, c, d])
}

fn tasks_of(g: &Gaea, process: &str) -> usize {
    g.catalog()
        .tasks
        .values()
        .filter(|t| t.process_name == process)
        .count()
}

// ---------------------------------------------------------------------
// refresh_all
// ---------------------------------------------------------------------

#[test]
fn refresh_all_reports_empty_when_nothing_is_stale() {
    let mut g = fan_kernel(1);
    let s = insert_v(&mut g, "src", 1);
    g.run_process("STEP", &[("x", vec![s])]).unwrap();
    let report = g.refresh_all().unwrap();
    assert_eq!(report.refreshed(), 0);
    assert_eq!(report.waves, 0);
    assert!(report.skipped.is_empty());
    assert!(report.replacements.is_empty());
}

#[test]
fn refresh_all_fans_out_in_one_wave() {
    for workers in [1, 4] {
        let mut g = fan_kernel(workers);
        let bases: Vec<ObjectId> = (0..8).map(|i| insert_v(&mut g, "src", i)).collect();
        let outs: Vec<ObjectId> = bases
            .iter()
            .map(|b| g.run_process("STEP", &[("x", vec![*b])]).unwrap().outputs[0])
            .collect();
        for b in &bases {
            set_v(&mut g, *b, 100);
        }
        assert_eq!(g.stale_objects().len(), 8);

        let report = g.refresh_all().unwrap();
        assert_eq!(report.waves, 1, "independent firings level into one wave");
        assert_eq!(report.refreshed(), 8);
        assert!(report.skipped.is_empty());
        for out in &outs {
            assert!(g.is_stale(*out), "the old object remains stale history");
            let fresh = report.replacements[out];
            assert!(!g.is_stale(fresh));
            assert_eq!(v_of(&g, fresh), 100, "re-derived from the mutated base");
        }

        // Idempotent: a second refresh re-fires nothing (the stale
        // objects' derivations already have current replacements).
        let tasks_before = g.catalog().tasks.len();
        let again = g.refresh_all().unwrap();
        assert_eq!(g.catalog().tasks.len(), tasks_before, "no new tasks");
        assert!(again.skipped.is_empty());
    }
}

#[test]
fn refresh_all_rederives_a_diamond_exactly_once_in_dependency_order() {
    for workers in [1, 4] {
        let mut g = diamond_kernel(workers);
        let (z, [a, b, c, d]) = fire_diamond(&mut g);
        set_v(&mut g, z, 50);
        assert_eq!(g.stale_objects(), {
            let mut all = vec![a, b, c, d];
            all.sort();
            all
        });

        let report = g.refresh_all().unwrap();
        assert_eq!(report.waves, 3, "a | b,c | d");
        assert_eq!(report.refreshed(), 4);
        // Exactly one re-fire per process — the shared upstream `a` was
        // not re-derived once per path.
        for p in ["PA", "PB", "PC", "PD"] {
            assert_eq!(tasks_of(&g, p), 2, "{p}: original + one refresh");
        }
        // Both middle derivations rebound to the same fresh `a`.
        let fresh_a = report.replacements[&a];
        let fresh_b_task = g.catalog().producing_task(report.replacements[&b]).unwrap();
        let fresh_c_task = g.catalog().producing_task(report.replacements[&c]).unwrap();
        assert_eq!(fresh_b_task.inputs["src"], vec![fresh_a]);
        assert_eq!(fresh_c_task.inputs["src"], vec![fresh_a]);
        // The sink consumed both fresh intermediates and is current.
        let fresh_d = report.replacements[&d];
        let fresh_d_task = g.catalog().producing_task(fresh_d).unwrap();
        assert_eq!(fresh_d_task.inputs["x"], vec![report.replacements[&b]]);
        assert_eq!(fresh_d_task.inputs["y"], vec![report.replacements[&c]]);
        assert!(!g.is_stale(fresh_d));
        assert_eq!(v_of(&g, fresh_d), 50);
    }
}

#[test]
fn refresh_all_rematerializes_deleted_intermediates() {
    let mut g = diamond_kernel(1);
    let (_, [a, b, _, _]) = fire_diamond(&mut g);
    // Deleting the derived intermediate stales its consumers; the
    // refresh must re-materialize `a` first, then rebind.
    g.delete_object(a).unwrap();
    assert!(g.is_stale(b));

    let report = g.refresh_all().unwrap();
    assert!(report.skipped.is_empty(), "skipped: {:?}", report.skipped);
    let fresh_a = report.replacements[&a];
    assert!(g.object(fresh_a).is_ok(), "deleted object re-materialized");
    assert!(!g.is_stale(fresh_a));
    assert!(!g.is_stale(report.replacements[&b]));
}

#[test]
fn refresh_all_skips_non_auto_firable_derivations_and_their_dependents() {
    let mut g = Gaea::in_memory();
    g.set_workers(1);
    int_class(&mut g, "field", true);
    int_class(&mut g, "survey", false);
    int_class(&mut g, "summary", false);
    g.define_nonapplicative_process(
        "P_survey",
        "survey",
        &[("site".into(), "field".into(), false, 1)],
        "walk the quadrats",
        "",
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("P_sum", "summary")
            .arg("src", "survey")
            .template(copy_v("src")),
    )
    .unwrap();
    let site = insert_v(&mut g, "field", 1);
    let survey = g
        .record_manual_task(
            "P_survey",
            &[("site", vec![site])],
            vec![("v", Value::Int4(9))],
            "observed",
        )
        .unwrap()
        .outputs[0];
    let summary = g
        .run_process("P_sum", &[("src", vec![survey])])
        .unwrap()
        .outputs[0];

    set_v(&mut g, site, 2);
    assert!(g.is_stale(survey) && g.is_stale(summary));
    let report = g.refresh_all().unwrap();
    assert_eq!(report.refreshed(), 0, "nothing the system can re-fire");
    let skipped: Vec<ObjectId> = report.skipped.iter().map(|(o, _)| *o).collect();
    assert!(skipped.contains(&survey), "manual derivation skipped");
    assert!(
        skipped.contains(&summary),
        "dependent blocked by stale input"
    );
    let survey_reason = &report.skipped.iter().find(|(o, _)| *o == survey).unwrap().1;
    assert!(survey_reason.contains("non-applicative"), "{survey_reason}");
    // Both remain stale — refresh_all reported rather than lied.
    assert!(g.is_stale(survey) && g.is_stale(summary));
}

#[test]
fn refresh_all_state_is_identical_for_every_worker_count() {
    let run = |workers: usize| -> (Vec<(ObjectId, ObjectId)>, usize, Vec<String>) {
        let mut g = diamond_kernel(workers);
        let (z, _) = fire_diamond(&mut g);
        set_v(&mut g, z, 77);
        let report = g.refresh_all().unwrap();
        let mut tasks: Vec<String> = g.catalog().tasks.values().map(|t| t.to_string()).collect();
        tasks.sort();
        (
            report.replacements.into_iter().collect(),
            report.waves,
            tasks,
        )
    };
    let (repl1, waves1, tasks1) = run(1);
    for workers in [2, 4, 8] {
        let (repl, waves, tasks) = run(workers);
        assert_eq!(repl, repl1, "replacements diverged at {workers} workers");
        assert_eq!(waves, waves1);
        assert_eq!(
            tasks, tasks1,
            "recorded history diverged at {workers} workers"
        );
    }
}

// ---------------------------------------------------------------------
// derive_parallel and the query pipeline's wave stage
// ---------------------------------------------------------------------

/// Two-branch fixture: `base_a` --P_LEFT--> `mid_a`, `base_b`
/// --P_RIGHT--> `mid_b`, then (`mid_a`, `mid_b`) --P_JOIN--> `goal`.
fn branches_kernel(workers: usize) -> Gaea {
    let mut g = Gaea::in_memory();
    g.set_workers(workers);
    for (name, base) in [
        ("base_a", true),
        ("base_b", true),
        ("mid_a", false),
        ("mid_b", false),
        ("goal", false),
    ] {
        int_class(&mut g, name, base);
    }
    g.define_process(
        ProcessSpec::new("P_LEFT", "mid_a")
            .arg("src", "base_a")
            .template(copy_v("src")),
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("P_RIGHT", "mid_b")
            .arg("src", "base_b")
            .template(copy_v("src")),
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("P_JOIN", "goal")
            .arg("x", "mid_a")
            .arg("y", "mid_b")
            .template(copy_v("x")),
    )
    .unwrap();
    let _ = insert_v(&mut g, "base_a", 11);
    let _ = insert_v(&mut g, "base_b", 22);
    g
}

fn goal_query() -> Query {
    Query::class("goal").with_strategy(QueryStrategy::PreferDerivation)
}

#[test]
fn derive_parallel_fires_independent_branches_and_matches_the_serial_pipeline() {
    // Reference: the classic serial pipeline.
    let mut serial = branches_kernel(1);
    let s_out = serial.query(&goal_query()).unwrap();
    assert_eq!(s_out.method, QueryMethod::Derived);

    for workers in [1, 4] {
        let mut g = branches_kernel(workers);
        let out = g.derive_parallel(&goal_query()).unwrap();
        assert_eq!(out.method, QueryMethod::Derived);
        assert_eq!(out.objects.len(), s_out.objects.len());
        assert_eq!(
            out.objects[0].attrs, s_out.objects[0].attrs,
            "same derived attributes at {workers} workers"
        );
        assert_eq!(
            g.catalog().tasks.len(),
            serial.catalog().tasks.len(),
            "same number of recorded tasks at {workers} workers"
        );
        // All three processes fired exactly once each.
        for p in ["P_LEFT", "P_RIGHT", "P_JOIN"] {
            assert_eq!(tasks_of(&g, p), 1);
        }
    }
}

#[test]
fn multi_worker_query_routes_through_waves_and_matches_serial() {
    let mut serial = branches_kernel(1);
    let s_out = serial.query(&goal_query()).unwrap();

    let mut g = branches_kernel(4);
    let out = g.query(&goal_query()).unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(out.objects[0].attrs, s_out.objects[0].attrs);
    assert_eq!(g.catalog().tasks.len(), serial.catalog().tasks.len());

    // The repeated query is answered by step-1 retrieval either way.
    let warm = g.query(&goal_query()).unwrap();
    assert_eq!(warm.method, QueryMethod::Retrieved);
}

#[test]
fn derive_parallel_reuses_current_tasks_instead_of_refiring() {
    let mut g = branches_kernel(4);
    let first = g.derive_parallel(&goal_query()).unwrap();
    let tasks_before = g.catalog().tasks.len();
    // Forcing derivation again reuses the identical current derivations.
    let second = g.derive_parallel(&goal_query()).unwrap();
    assert_eq!(g.catalog().tasks.len(), tasks_before, "nothing re-fired");
    assert_eq!(first.objects[0].id, second.objects[0].id);
}

#[test]
fn refresh_all_then_query_serves_current_answers() {
    let mut g = branches_kernel(4);
    let first = g.query(&goal_query()).unwrap();
    let goal = first.objects[0].id;
    // Mutate one branch's base: the whole chain through it goes stale.
    let base = g.objects_of("base_a").unwrap()[0];
    set_v(&mut g, base, 99);
    assert!(g.is_stale(goal));

    let report = g.refresh_all().unwrap();
    assert!(report.skipped.is_empty());
    // P_RIGHT's branch was untouched and must not re-fire.
    assert_eq!(tasks_of(&g, "P_RIGHT"), 1);
    assert_eq!(tasks_of(&g, "P_LEFT"), 2);
    assert_eq!(tasks_of(&g, "P_JOIN"), 2);
    let fresh_goal = report.replacements[&goal];
    assert!(!g.is_stale(fresh_goal));
    assert_eq!(v_of(&g, fresh_goal), 99);
}

#[test]
fn self_feeding_process_repetitions_serialize_across_waves() {
    // GROW's output class is also its input class, so the serial fire
    // stage lets repetition k+1 bind repetition k's freshly committed
    // output. The wave builder must order same-process repetitions of a
    // self-feeding process instead of placing them side by side —
    // otherwise the second repetition sees no admissible binding and the
    // scheduled pipeline diverges from the serial one (regression).
    let build = |workers: usize| {
        let mut g = Gaea::in_memory();
        g.set_workers(workers);
        int_class(&mut g, "seed", true);
        int_class(&mut g, "acc", false);
        int_class(&mut g, "goal", false);
        g.define_process(
            ProcessSpec::new("P_INIT", "acc")
                .arg("s", "seed")
                .template(copy_v("s")),
        )
        .unwrap();
        g.define_process(
            ProcessSpec::new("GROW", "acc")
                .arg("src", "acc")
                .template(copy_v("src")),
        )
        .unwrap();
        g.define_process(
            ProcessSpec::new("SINK", "goal")
                .setof_arg("xs", "acc", 3)
                .template(Template {
                    assertions: vec![],
                    mappings: vec![Mapping {
                        attr: "v".into(),
                        expr: Expr::int(1),
                    }],
                }),
        )
        .unwrap();
        insert_v(&mut g, "seed", 5);
        g
    };
    let q = Query::class("goal").with_strategy(QueryStrategy::PreferDerivation);
    let mut serial = build(1);
    let s_out = serial.query(&q).unwrap();
    for workers in [2, 4] {
        let mut g = build(workers);
        let out = g.query(&q).unwrap();
        assert_eq!(out.objects.len(), s_out.objects.len());
        assert_eq!(
            g.catalog().tasks.len(),
            serial.catalog().tasks.len(),
            "scheduled pipeline diverged from serial at {workers} workers"
        );
        assert_eq!(tasks_of(&g, "GROW"), 2, "both repetitions realized");
    }
}
