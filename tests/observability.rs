//! The observability layer end to end: the golden snapshot key set, the
//! `EXPLAIN ANALYZE`-style `QueryOutcome::profile` on both the live and
//! the wire query paths, the server's `Stats`/`Trace` introspection
//! requests, and the checkpoint-time refresh of the recovery gauges.

use gaea::adt::{TypeTag, Value};
use gaea::core::kernel::{ClassSpec, DurabilityOptions, Gaea};
use gaea::core::Query;
use gaea::obs::MetricsRegistry;
use gaea::server::{Client, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIRS: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gaea-obs-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .unwrap();
    for v in 0..64 {
        g.insert_object("obs", vec![("v", Value::Int4(v))]).unwrap();
    }
    g
}

/// The profile's depth-1 stages are contiguous laps over the statement
/// body, so their sum tracks the end-to-end wall time. The acceptance
/// bound is ±10%; a small absolute slack keeps sub-100µs statements
/// (where one clock tick is a large fraction) from flaking.
fn assert_stage_sum_close(total_us: u64, stage_sum_us: u64) {
    let diff = total_us.abs_diff(stage_sum_us);
    assert!(
        diff * 10 <= total_us || diff <= 50,
        "stage sum {stage_sum_us}µs vs total {total_us}µs is outside ±10% (+50µs slack)"
    );
}

/// Golden-file guard: the snapshot key names and their order are the
/// crate's compatibility surface (dashboards and `bench_summary.sh`
/// parse them). Adding an instrument means updating
/// `tests/golden/metrics_keys.txt` in the same change — deliberately.
#[test]
fn snapshot_keys_match_the_golden_file() {
    let golden: Vec<&str> = include_str!("golden/metrics_keys.txt")
        .lines()
        .filter(|l| !l.is_empty())
        .collect();
    let live = MetricsRegistry::new().snapshot().keys();
    assert_eq!(
        live, golden,
        "MetricsRegistry::snapshot() keys drifted from tests/golden/metrics_keys.txt"
    );
}

/// Every traced statement carries an `EXPLAIN ANALYZE`-style profile
/// whose stage laps account for the total wall time.
#[test]
fn live_query_profile_accounts_for_total_wall_time() {
    let mut g = seeded_kernel();
    let out = g.query(&Query::class("obs")).unwrap();
    let profile = out.profile.expect("traced statement must carry a profile");
    let stages: Vec<&str> = profile.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(stages.contains(&"plan"), "stages: {stages:?}");
    assert!(stages.contains(&"retrieve"), "stages: {stages:?}");
    assert!(stages.contains(&"project"), "stages: {stages:?}");
    assert_stage_sum_close(profile.total_us, profile.stage_sum_us());
}

/// The acceptance path: a server-side RETRIEVE returns its per-stage
/// profile over the wire, and the introspection requests answer — the
/// Stats metrics map carries the mandatory keys, the Trace ring holds
/// the statement just run.
#[test]
fn server_retrieve_returns_profile_and_introspection_answers() {
    let server = Server::bind(seeded_kernel(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let thread = std::thread::spawn(move || server.run());

    let mut c = Client::connect(&addr, "obs-test").unwrap();
    let out = c.retrieve("RETRIEVE * FROM obs WHERE v < 8").unwrap();
    assert_eq!(out.objects.len(), 8);
    let profile = out.profile.expect("wire outcome must carry the profile");
    assert!(!profile.stages.is_empty());
    assert_stage_sum_close(profile.total_us, profile.stage_sum_us());

    // Stats: session counters plus the full process-wide metrics map.
    let stats = c.stats().unwrap();
    assert!(stats.sessions_live >= 1);
    assert!(stats.reads_pinned >= 1);
    for key in [
        "queries_total",
        "query_us_p99",
        "cache_hits",
        "cache_misses",
        "wal_appends",
        "kernel_pins",
    ] {
        assert!(stats.metrics.contains_key(key), "missing metrics key {key}");
    }
    assert!(stats.metrics["queries_total"] >= 1);
    assert!(stats.metrics["kernel_pins"] >= 1);

    // Trace: the ring retains the RETRIEVE (threshold defaults to 0 =
    // keep everything) with its stage spans.
    let traces = c.traces().unwrap();
    assert!(
        traces.iter().any(|t| t.root == "query"),
        "trace ring should hold the statement just run: {traces:?}"
    );

    c.shutdown_server().unwrap();
    let report = thread.join().unwrap();
    assert!(report.wal_flush.is_ok());
}

/// Regression (PR 9 bugfix): `recovery_stats()` used to be computed at
/// open and never refreshed, so a checkpoint left it describing a log
/// segment that no longer existed. It now advances with every
/// checkpoint, and the registry gauges advance with it.
#[test]
fn checkpoint_refreshes_recovery_stats_and_gauges() {
    let dir = fresh_dir("ckpt");
    let mut g = Gaea::open_with(
        &dir,
        DurabilityOptions {
            fsync_every: 1,
            snapshot_every: 0,
            ..Default::default()
        },
    )
    .unwrap();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .unwrap();
    for v in 0..4 {
        g.insert_object("obs", vec![("v", Value::Int4(v))]).unwrap();
    }
    assert_eq!(
        g.recovery_stats().unwrap().snapshot_seq,
        0,
        "no snapshot exists before the first checkpoint"
    );

    g.checkpoint().unwrap();
    let first = g.recovery_stats().unwrap().clone();
    assert!(
        first.snapshot_seq > 0,
        "checkpoint must advance the in-process snapshot watermark: {first:?}"
    );
    assert_eq!(first.wal_dropped_bytes, 0);
    assert!(!first.wal_corrupt);
    assert_eq!(
        gaea::obs::metrics().recovery_snapshot_seq.get(),
        first.snapshot_seq,
        "the registry gauge tracks the refreshed stats"
    );

    // Another write and another checkpoint move the watermark again.
    g.insert_object("obs", vec![("v", Value::Int4(99))])
        .unwrap();
    g.checkpoint().unwrap();
    let second = g.recovery_stats().unwrap().snapshot_seq;
    assert!(second > first.snapshot_seq, "{second} vs {first:?}");

    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}
