//! Property tests for the multi-session tentpole's snapshot-isolation
//! contract: any interleaving of snapshot-pinned readers with a writer
//! stream yields reader answers equal to *some committed prefix* of the
//! write history, with `stale` and `pending` flags judged against the
//! pinned version — never the live one.
//!
//! CI runs this file in the `props` job at `PROPTEST_CASES=256`.

use gaea::adt::{TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec, ReadView, SharedKernel};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{ObjectId, Query, QueryStrategy};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Schema: base `obs {v}`, derived `dbl {v}`, local `COPY: obs → dbl`.
fn kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
        .unwrap();
    g.define_class(
        ClassSpec::derived("dbl")
            .attr("v", TypeTag::Int4)
            .no_extents(),
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("COPY", "dbl")
            .arg("x", "obs")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "v".into(),
                    expr: Expr::proj("x", "v"),
                }],
            }),
    )
    .unwrap();
    g
}

fn q(class: &str) -> Query {
    Query::class(class).with_strategy(QueryStrategy::RetrieveOnly)
}

/// One committed statement in the writer stream, or a reader pinning a
/// view mid-stream.
#[derive(Debug, Clone)]
enum Step {
    /// Insert into `obs`.
    Insert(i32),
    /// Mutate an existing `obs` object (staleness driver: every `dbl`
    /// derived from it goes stale).
    Update(usize, i32),
    /// Fire `COPY` on an existing `obs` object, deriving a `dbl`.
    Fire(usize),
    /// Pin a view here and remember what it must keep answering.
    Pin,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<i32>().prop_map(Step::Insert),
        2 => ((0usize..64), any::<i32>()).prop_map(|(i, v)| Step::Update(i, v)),
        2 => (0usize..64).prop_map(Step::Fire),
        3 => Just(Step::Pin),
    ]
}

/// The full committed state a pinned view must keep answering: taken at
/// pin time, compared at the very end after the writer stream moved on.
#[derive(Debug)]
struct Expectation {
    view: Arc<ReadView>,
    clock: u64,
    obs_count: usize,
    dbl_count: usize,
    stale: BTreeSet<ObjectId>,
}

proptest! {
    /// Sequential interleaving: every view pinned mid-stream still
    /// answers exactly the committed prefix it was pinned at — object
    /// counts and the stale set — after the writer stream has moved
    /// arbitrarily far past it.
    #[test]
    fn pinned_views_answer_their_committed_prefix_forever(
        steps in proptest::collection::vec(step_strategy(), 1..40)
    ) {
        let shared = SharedKernel::new(kernel());
        let mut live_obs: Vec<ObjectId> = Vec::new();
        let mut expectations: Vec<Expectation> = Vec::new();

        for step in &steps {
            match step {
                Step::Insert(v) => {
                    let oid = shared.exec(|g| {
                        g.insert_object("obs", vec![("v", Value::Int4(*v))]).unwrap()
                    });
                    live_obs.push(oid);
                }
                Step::Update(i, v) => {
                    if !live_obs.is_empty() {
                        let oid = live_obs[i % live_obs.len()];
                        shared.exec(|g| {
                            g.update_object(oid, vec![("v", Value::Int4(*v))]).unwrap()
                        });
                    }
                }
                Step::Fire(i) => {
                    if !live_obs.is_empty() {
                        let oid = live_obs[i % live_obs.len()];
                        shared.exec(|g| {
                            g.run_process("COPY", &[("x", vec![oid])]).unwrap()
                        });
                    }
                }
                Step::Pin => {
                    let view = shared.pin();
                    // The ground truth at this commit point, read off the
                    // fresh pin itself *and* cross-checked against the
                    // serialized kernel (same instant, no writer racing).
                    let (obs_count, dbl_count, stale) = match view.query(&q("obs")) {
                        Ok(o) => {
                            let (d, s) = match view.query(&q("dbl")) {
                                Ok(d) => (
                                    d.objects.len(),
                                    d.stale.iter().copied().collect::<BTreeSet<_>>(),
                                ),
                                Err(_) => (0, BTreeSet::new()),
                            };
                            (o.objects.len(), d, s)
                        }
                        Err(_) => (0, 0, BTreeSet::new()),
                    };
                    let live_now: usize = shared.exec(|g| {
                        g.query(&q("obs")).map(|o| o.objects.len()).unwrap_or(0)
                    });
                    // A pin with no writer in flight is fully caught up.
                    prop_assert_eq!(obs_count, live_now);
                    expectations.push(Expectation {
                        clock: view.clock(),
                        view,
                        obs_count,
                        dbl_count,
                        stale,
                    });
                }
            }
        }

        // The stream is over; every pinned view must still answer its
        // own commit point exactly.
        for e in &expectations {
            prop_assert_eq!(e.view.clock(), e.clock, "a view's clock never moves");
            let obs_now = match e.view.query(&q("obs")) {
                Ok(o) => o.objects.len(),
                Err(_) => 0,
            };
            prop_assert_eq!(obs_now, e.obs_count);
            let (dbl_now, stale_now) = match e.view.query(&q("dbl")) {
                Ok(d) => (
                    d.objects.len(),
                    d.stale.iter().copied().collect::<BTreeSet<_>>(),
                ),
                Err(_) => (0, BTreeSet::new()),
            };
            prop_assert_eq!(dbl_now, e.dbl_count);
            prop_assert_eq!(&stale_now, &e.stale, "stale flags judged at the pinned version");
        }

        // Pins were taken in stream order: clocks never regress.
        for pair in expectations.windows(2) {
            prop_assert!(pair[0].clock <= pair[1].clock);
        }
    }

    /// Threaded interleaving: K reader threads pin and query while a
    /// writer thread streams inserts. Every reader answer must equal
    /// the committed prefix at its pinned clock — the writer records
    /// the (clock, count) history, readers record observations, and
    /// the two must agree exactly.
    #[test]
    fn concurrent_readers_see_only_committed_prefixes(
        writes in 1usize..40,
        readers in 1usize..5,
        reads_each in 1usize..20,
    ) {
        let shared = SharedKernel::new({
            let mut g = kernel();
            g.insert_object("obs", vec![("v", Value::Int4(0))]).unwrap();
            g
        });
        // clock → committed obs count, seeded with the initial state.
        let history = Arc::new(Mutex::new(std::collections::HashMap::new()));
        {
            let view = shared.pin();
            let count = view.query(&q("obs")).unwrap().objects.len();
            history.lock().unwrap().insert(view.clock(), count);
        }

        let writer = {
            let shared = Arc::clone(&shared);
            let history = Arc::clone(&history);
            std::thread::spawn(move || {
                for v in 0..writes {
                    shared.exec(|g| {
                        g.insert_object("obs", vec![("v", Value::Int4(v as i32))]).unwrap();
                        // Record while still holding the commit path:
                        // the clock→count pair is atomic with the commit.
                        let clock = g.store_clock();
                        let count = g.query(&q("obs")).unwrap().objects.len();
                        history.lock().unwrap().insert(clock, count);
                    });
                }
            })
        };

        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen: Vec<(u64, usize)> = Vec::new();
                    let mut last_clock = 0;
                    for _ in 0..reads_each {
                        let view = shared.pin();
                        let outcome = view.query(&q("obs")).unwrap();
                        // Within one view, repetition is free: same answer.
                        let again = view.query(&q("obs")).unwrap();
                        assert_eq!(outcome.objects.len(), again.objects.len());
                        // Pins never travel back in time.
                        assert!(view.clock() >= last_clock);
                        last_clock = view.clock();
                        seen.push((view.clock(), outcome.objects.len()));
                    }
                    seen
                })
            })
            .collect();

        writer.join().unwrap();
        let history = history.lock().unwrap();
        for r in reader_handles {
            for (clock, count) in r.join().unwrap() {
                let expected = history.get(&clock);
                prop_assert_eq!(
                    expected,
                    Some(&count),
                    "a reader at clock {} saw {} objects; committed history says {:?}",
                    clock,
                    count,
                    expected
                );
            }
        }
    }

    /// `pending` on a pinned outcome only ever names jobs that were
    /// submitted at or before the pin — a job submitted after the pin
    /// is invisible, exactly like data committed after the pin.
    #[test]
    fn pinned_pending_never_leaks_future_jobs(
        before in 0usize..4,
        after in 1usize..4,
    ) {
        let shared = SharedKernel::new({
            let mut g = kernel();
            for v in 0..4 {
                g.insert_object("obs", vec![("v", Value::Int4(v))]).unwrap();
            }
            g
        });
        let mut dq = q("dbl");
        dq.strategy = QueryStrategy::PreferDerivation;
        dq.async_submit = true;

        let mut submitted_before = Vec::new();
        for _ in 0..before {
            if let Ok(id) = shared.exec(|g| g.submit_derivation(&dq)) {
                submitted_before.push(id.0);
            }
        }
        let view = shared.pin();
        for _ in 0..after {
            let _ = shared.exec(|g| g.submit_derivation(&dq));
        }

        // The pinned board must not know any job submitted after the pin.
        let horizon = submitted_before.iter().copied().max().unwrap_or(0);
        for job in view.jobs() {
            prop_assert!(
                job.id.0 <= horizon,
                "pinned board leaked future job {:?} (horizon {})",
                job.id,
                horizon
            );
        }
        // And a pinned query's pending list draws only from that board.
        if let Ok(outcome) = view.query(&q("dbl")) {
            for id in outcome.pending {
                prop_assert!(id.0 <= horizon);
            }
        }
    }
}
