//! Experiment Q5 and §4.2 browsing: parameter-distinct processes over one
//! concept, catalog description, DOT exports, experiment comparison.

use gaea::adt::{AbsTime, GeoBox, Image, Value};
use gaea::core::kernel::Gaea;
use gaea::workload::build_figure2_schema;

fn kernel_with_rainfall() -> (Gaea, gaea::core::ObjectId) {
    let mut g = Gaea::in_memory().with_user("q5");
    build_figure2_schema(&mut g).unwrap();
    let sahara = GeoBox::new(-15.0, 15.0, 35.0, 32.0);
    let rows = 16u32;
    let cols = 32u32;
    let rainfall: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let r = (i / cols) as f64 / rows as f64;
            600.0 - 560.0 * r
        })
        .collect();
    let oid = g
        .insert_object(
            "rainfall",
            vec![
                (
                    "data",
                    Value::image(Image::from_f64(rows, cols, rainfall).unwrap()),
                ),
                ("spatialextent", Value::GeoBox(sahara)),
                (
                    "timestamp",
                    Value::AbsTime(AbsTime::from_ymd(1986, 6, 1).unwrap()),
                ),
            ],
        )
        .unwrap();
    (g, oid)
}

#[test]
fn parameter_distinct_desert_processes() {
    // §2.1.2: 250mm vs 200mm are different processes; their outputs are
    // different classes realizing one concept.
    let (mut g, rain) = kernel_with_rainfall();
    let r250 = g
        .run_process("P2_desert_250", &[("rain", vec![rain])])
        .unwrap();
    let r200 = g
        .run_process("P3_desert_200", &[("rain", vec![rain])])
        .unwrap();
    let m250 = g.object(r250.outputs[0]).unwrap();
    let m200 = g.object(r200.outputs[0]).unwrap();
    // Different classes, different derivations, both members of the concept.
    assert_ne!(m250.class, m200.class);
    assert!(!g.same_derivation(m250.id, m200.id).unwrap());
    let concept = g
        .catalog()
        .concept_by_name("hot_trade_wind_desert")
        .unwrap();
    assert!(concept.has_member(m250.class) && concept.has_member(m200.class));
    // The looser threshold admits at least as many desert pixels.
    let area = |o: &gaea::core::DataObject| {
        let img = o.attr("data").unwrap().as_image().unwrap().clone();
        (0..img.len()).filter(|i| img.get_flat(*i) > 0.0).count()
    };
    assert!(area(&m250) >= area(&m200));
    assert!(area(&m250) > 0);
}

#[test]
fn describe_renders_the_whole_catalog() {
    let (g, _) = kernel_with_rainfall();
    let ddl = g.describe();
    for needle in [
        "CLASS rainfall",
        "CLASS desert_rain_250",
        "DEFINE PROCESS P2_desert_250",
        "threshold_below(rain.data, 250)",
        "threshold_below(rain.data, 200)",
        "CONCEPT hot_trade_wind_desert",
    ] {
        assert!(ddl.contains(needle), "describe() missing {needle:?}");
    }
}

#[test]
fn derivation_dot_reflects_stored_counts() {
    let (g, _) = kernel_with_rainfall();
    let dot = g.derivation_dot().unwrap();
    assert!(dot.contains("digraph derivation"));
    assert!(dot.contains("rainfall (1)"), "one stored rainfall grid");
    assert!(dot.contains("desert_rain_250 (0)"));
    assert!(dot.contains("P2_desert_250"));
}

#[test]
fn lineage_dot_for_derived_mask() {
    let (mut g, rain) = kernel_with_rainfall();
    let run = g
        .run_process("P2_desert_250", &[("rain", vec![rain])])
        .unwrap();
    let dot = g.lineage_dot(run.outputs[0]).unwrap();
    assert!(dot.contains("P2_desert_250"));
    assert!(dot.contains("rainfall"));
    assert!(dot.contains("lightgray"), "base rainfall shaded");
}

#[test]
fn experiment_comparison_across_scientists() {
    let (mut g, rain) = kernel_with_rainfall();
    let r1 = g
        .run_process("P2_desert_250", &[("rain", vec![rain])])
        .unwrap();
    g.record_experiment("sahara_250", "deserts at 250mm", vec![r1.task])
        .unwrap();
    g.set_user("zhang");
    let r2 = g
        .run_process("P3_desert_200", &[("rain", vec![rain])])
        .unwrap();
    g.record_experiment("sahara_200", "deserts at 200mm", vec![r2.task])
        .unwrap();
    let diff = g.compare_experiments("sahara_250", "sahara_200").unwrap();
    assert!(!diff.equivalent());
    assert!(diff.only_first[0].contains("P2_desert_250"));
    assert!(diff.only_second[0].contains("P3_desert_200"));
    // Reuse lookup: who has already run the 250mm derivation?
    let pid = g.catalog().process_by_name("P2_desert_250").unwrap().id;
    let users = gaea::core::report::experiments_using_process(g.catalog(), pid);
    assert_eq!(users.len(), 1);
}

#[test]
fn registry_browsing_surfaces_crop() {
    let (g, _) = kernel_with_rainfall();
    assert!(g.registry().contains("img_crop"));
    let for_images = g.registry().ops_for_input(&gaea::adt::TypeTag::Image);
    assert!(for_images.iter().any(|d| d.name == "img_crop"));
}
