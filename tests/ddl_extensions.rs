//! The DDL surface of the extensions: `ref` attributes (§4.3),
//! `INTERACTIONS` with `PARAM`/`PREVIEW` (§4.3), `EXTERNAL AT` (§5) and
//! `NONAPPLICATIVE` (§5) all parse, pretty-print round-trip, and lower to
//! working kernel definitions.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::Gaea;
use gaea::core::schema::ProcessKind;
use gaea::core::task::TaskKind;
use gaea::lang::{lower_program, parse, pretty_program};
use std::collections::BTreeMap;
use std::sync::Arc;

const EXTENDED: &str = r#"
CLASS tm ( // Rectified Landsat TM
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)

CLASS landcover_sup ( // Supervised land cover
  ATTRIBUTES:
    data = image;
    source = ref tm; // scene this map classifies
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P_super
)

CLASS ndvi_map ( // NDVI, computed remotely
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P_ndvi_remote
)

CLASS site_survey ( // Ground truth
  ATTRIBUTES:
    vegetation_pct = float8;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P_field_survey
)

DEFINE PROCESS P_super (
  OUTPUT landcover_sup
  ARGUMENT ( SETOF bands tm )
  INTERACTIONS {
    PARAM signatures : matrix PREVIEW composite(bands); // digitize training sites
  }
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.timestamp);
    MAPPINGS:
      landcover_sup.data = superclassify(composite(bands), PARAM signatures);
      landcover_sup.spatialextent = ANYOF bands.spatialextent;
      landcover_sup.timestamp = ANYOF bands.timestamp;
  }
)

DEFINE PROCESS P_ndvi_remote (
  OUTPUT ndvi_map
  ARGUMENT ( nir tm, red tm )
  EXTERNAL AT "eros_data_center"
  TEMPLATE {
    ASSERTIONS:
      nir.timestamp = red.timestamp;
  }
)

DEFINE PROCESS P_field_survey (
  OUTPUT site_survey
  ARGUMENT ( scene tm )
  NONAPPLICATIVE "sample 20 quadrats along two transects"
)
"#;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

#[test]
fn extended_ddl_parses_and_round_trips() {
    let ast1 = parse(EXTENDED).unwrap();
    let printed = pretty_program(&ast1);
    let ast2 = parse(&printed).unwrap();
    assert_eq!(ast1, ast2, "pretty-printed program re-parses identically");
    assert_eq!(printed, pretty_program(&ast2), "printing is a fixpoint");
    // Surface forms present.
    assert!(printed.contains("source = ref tm;"));
    assert!(printed.contains("PARAM signatures : matrix PREVIEW composite(bands);"));
    assert!(printed.contains("EXTERNAL AT \"eros_data_center\""));
    assert!(printed.contains("NONAPPLICATIVE \"sample 20 quadrats"));
    assert!(printed.contains("superclassify(composite(bands), PARAM signatures)"));
}

#[test]
fn extended_ddl_lowers_to_working_definitions() {
    let mut g = Gaea::in_memory();
    let prog = parse(EXTENDED).unwrap();
    let lowered = lower_program(&mut g, &prog).unwrap();
    assert_eq!(lowered.classes.len(), 4);
    assert_eq!(lowered.processes.len(), 3);

    // Interactive process lowered with its point and preview.
    let p_super = g.catalog().process_by_name("P_super").unwrap();
    assert!(p_super.is_interactive());
    assert_eq!(p_super.interactions[0].param, "signatures");
    assert!(p_super.interactions[0].preview.is_some());
    assert!(p_super.interactions[0].prompt.contains("digitize"));

    // External process lowered with its site.
    let p_remote = g.catalog().process_by_name("P_ndvi_remote").unwrap();
    assert_eq!(p_remote.site(), Some("eros_data_center"));
    assert_eq!(p_remote.template.assertions.len(), 1);

    // Non-applicative process lowered with its procedure.
    let p_survey = g.catalog().process_by_name("P_field_survey").unwrap();
    assert!(p_survey.is_non_applicative());
    match &p_survey.kind {
        ProcessKind::NonApplicative { procedure } => {
            assert!(procedure.contains("quadrats"))
        }
        other => panic!("unexpected kind {other:?}"),
    }

    // Reference attribute lowered with its target class.
    let lc = g.catalog().class_by_name("landcover_sup").unwrap();
    let source = lc.attr("source").unwrap();
    assert!(source.is_reference());
    assert_eq!(
        source.ref_class,
        Some(g.catalog().class_by_name("tm").unwrap().id)
    );
}

#[test]
fn lowered_external_process_fires_through_a_site() {
    let mut g = Gaea::in_memory();
    lower_program(&mut g, &parse(EXTENDED).unwrap()).unwrap();
    g.register_site(
        "eros_data_center",
        Arc::new(SimulatedSite::new("eros_data_center", |_d, inputs| {
            let nir = &inputs["nir"][0];
            let red = &inputs["red"][0];
            let img = gaea::raster::ndvi(
                nir.attr("data").and_then(Value::as_image).expect("nir"),
                red.attr("data").and_then(Value::as_image).expect("red"),
            )
            .map_err(gaea::core::KernelError::from)?;
            let mut out = BTreeMap::new();
            out.insert("data".to_string(), Value::image(img));
            out.insert(
                "spatialextent".to_string(),
                nir.attr("spatialextent").cloned().unwrap(),
            );
            out.insert(
                "timestamp".to_string(),
                nir.attr("timestamp").cloned().unwrap(),
            );
            Ok(out)
        })),
    );
    let t = AbsTime::from_ymd(1988, 6, 1).unwrap();
    let mk = |g: &mut Gaea, fill: f64| {
        g.insert_object(
            "tm",
            vec![
                (
                    "data",
                    Value::image(Image::filled(4, 4, PixType::Float8, fill)),
                ),
                ("spatialextent", Value::GeoBox(africa())),
                ("timestamp", Value::AbsTime(t)),
            ],
        )
        .unwrap()
    };
    let nir = mk(&mut g, 0.9);
    let red = mk(&mut g, 0.1);
    let run = g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .unwrap();
    assert_eq!(g.task(run.task).unwrap().kind, TaskKind::External);
    let out = g.object(run.outputs[0]).unwrap();
    let img = out.attr("data").unwrap().as_image().unwrap();
    assert!((img.get(0, 0) - 0.8).abs() < 1e-12);
}

#[test]
fn catalog_ddl_rendering_includes_extensions() {
    // §4.2 browsing: the catalog's own DDL rendering shows the new
    // constructs, so a scientist reading the schema sees the interaction
    // points, the site, and the procedure.
    let mut g = Gaea::in_memory();
    lower_program(&mut g, &parse(EXTENDED).unwrap()).unwrap();
    let ddl = g.describe();
    assert!(ddl.contains("PARAM signatures : matrix"), "{ddl}");
    assert!(ddl.contains("EXTERNAL AT \"eros_data_center\""), "{ddl}");
    assert!(ddl.contains("NONAPPLICATIVE"), "{ddl}");
}
