//! Property-based tests on the system-level layer: value identity, raster
//! codecs, extents, eigen decomposition, classification invariants.

use gaea::adt::{AbsTime, GeoBox, Image, Matrix, PixType, PixelBuffer, TimeRange, Value};
use gaea::raster::{composite, jacobi_eigen, kmeans_classify};
use proptest::prelude::*;

fn pixtype_strategy() -> impl Strategy<Value = PixType> {
    prop_oneof![
        Just(PixType::Char),
        Just(PixType::Int2),
        Just(PixType::Int4),
        Just(PixType::Float4),
        Just(PixType::Float8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Value identity is a total equivalence: reflexive, symmetric with
    /// consistent hashing, and Ord-total.
    #[test]
    fn value_identity_total_order(
        a in prop_oneof![
            any::<i32>().prop_map(Value::Int4),
            any::<f64>().prop_map(Value::Float8),
            any::<bool>().prop_map(Value::Bool),
            ".*".prop_map(Value::Text),
        ],
        b in prop_oneof![
            any::<i32>().prop_map(Value::Int4),
            any::<f64>().prop_map(Value::Float8),
            any::<bool>().prop_map(Value::Bool),
            ".*".prop_map(Value::Text),
        ],
    ) {
        prop_assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Equal values hash equally.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Pixel buffers survive the byte codec for every pixel type.
    #[test]
    fn pixel_buffer_codec_round_trip(
        pt in pixtype_strategy(),
        samples in prop::collection::vec(-1e6f64..1e6, 0..64),
    ) {
        let mut buf = PixelBuffer::zeros(pt, samples.len());
        for (i, v) in samples.iter().enumerate() {
            buf.set(i, *v);
        }
        let bytes = buf.to_bytes();
        let back = PixelBuffer::from_bytes(pt, &bytes).unwrap();
        prop_assert_eq!(&back, &buf);
        // And through serde (the snapshot path).
        let json = serde_json::to_string(&buf).unwrap();
        let back2: PixelBuffer = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back2, buf);
    }

    /// Box algebra: intersection ⊆ both, union ⊇ both, commutativity.
    #[test]
    fn geobox_algebra(
        ax in -180.0f64..180.0, ay in -90.0f64..90.0,
        aw in 0.0f64..90.0, ah in 0.0f64..45.0,
        bx in -180.0f64..180.0, by in -90.0f64..90.0,
        bw in 0.0f64..90.0, bh in 0.0f64..45.0,
    ) {
        let a = GeoBox::new(ax, ay, ax + aw, ay + ah);
        let b = GeoBox::new(bx, by, bx + bw, by + bh);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(i.area() <= a.area() + 1e-9);
        } else {
            prop_assert!(!a.intersects(&b));
        }
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        // common() for two boxes is exactly intersects().
        prop_assert_eq!(GeoBox::common(&[a, b]), a.intersects(&b));
    }

    /// Calendar round trip over a wide date range.
    #[test]
    fn abstime_calendar_round_trip(days in -200_000i64..200_000) {
        let t = AbsTime(days * 86_400);
        let (y, m, d) = t.ymd();
        prop_assert_eq!(AbsTime::from_ymd(y, m, d).unwrap(), t);
        // Parse/render round trip.
        prop_assert_eq!(AbsTime::parse(&t.render()).unwrap(), t);
    }

    /// Time ranges: intersection is symmetric and contained.
    #[test]
    fn time_range_algebra(
        s1 in -1_000_000i64..1_000_000, d1 in 0i64..1_000_000,
        s2 in -1_000_000i64..1_000_000, d2 in 0i64..1_000_000,
    ) {
        let a = TimeRange::new(AbsTime(s1), AbsTime(s1 + d1));
        let b = TimeRange::new(AbsTime(s2), AbsTime(s2 + d2));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(i.start) && a.contains(i.end));
            prop_assert!(b.contains(i.start) && b.contains(i.end));
        }
    }

    /// Jacobi eigen: A·v = λ·v residuals stay small; eigenvalue sum equals
    /// the trace; eigenvectors are orthonormal.
    #[test]
    fn eigen_invariants(
        n in 2usize..6,
        entries in prop::collection::vec(-100.0f64..100.0, 36),
    ) {
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                let v = entries[r * 6 + c];
                a.set(r, c, v);
                a.set(c, r, v);
            }
        }
        let e = jacobi_eigen(&a, 200, 1e-10).unwrap();
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        let scale = 1.0 + a.frobenius();
        prop_assert!((trace - sum).abs() < 1e-7 * scale);
        for k in 0..n {
            let v = e.vector(k);
            let av = a.matvec(&v).unwrap();
            let lam = e.values[k];
            let resid: f64 = av
                .data()
                .iter()
                .zip(v.data())
                .map(|(x, y)| (x - lam * y).powi(2))
                .sum::<f64>()
                .sqrt();
            prop_assert!(resid < 1e-7 * scale, "component {k} residual {resid}");
            prop_assert!((v.norm() - 1.0).abs() < 1e-9);
        }
    }

    /// k-means invariants: labels bounded, deterministic under the seed,
    /// inertia finite and non-negative.
    #[test]
    fn kmeans_invariants(
        rows in 2u32..8,
        cols in 2u32..8,
        k in 1usize..5,
        seed in 0u64..1000,
        samples in prop::collection::vec(0.0f64..255.0, 64),
    ) {
        let npix = (rows * cols) as usize;
        prop_assume!(k <= npix);
        let band: Vec<f64> = (0..npix).map(|i| samples[i % samples.len()]).collect();
        let img = Image::from_f64(rows, cols, band).unwrap();
        let stack = composite(&[&img]).unwrap();
        let a = kmeans_classify(&stack, k, 50, seed).unwrap();
        let b = kmeans_classify(&stack, k, 50, seed).unwrap();
        prop_assert_eq!(&a.labels, &b.labels);
        prop_assert!(a.inertia >= 0.0 && a.inertia.is_finite());
        for i in 0..npix {
            prop_assert!((a.labels.get_flat(i) as usize) < k);
        }
    }

    /// Image map/zip_map preserve shape and respect saturation bounds.
    #[test]
    fn image_map_invariants(
        rows in 1u32..6,
        cols in 1u32..6,
        scale in -3.0f64..3.0,
        samples in prop::collection::vec(-1000.0f64..1000.0, 36),
    ) {
        let npix = (rows * cols) as usize;
        let data: Vec<f64> = (0..npix).map(|i| samples[i % samples.len()]).collect();
        let img = Image::from_f64(rows, cols, data).unwrap();
        let scaled = img.map(PixType::Char, |v| v * scale);
        prop_assert!(img.size_eq(&scaled));
        for i in 0..npix {
            let v = scaled.get_flat(i);
            prop_assert!((0.0..=255.0).contains(&v), "char saturation violated: {v}");
        }
        let sum = img.zip_map(&img, PixType::Float8, |x, y| x + y).unwrap();
        for i in 0..npix {
            prop_assert_eq!(sum.get_flat(i), 2.0 * img.get_flat(i));
        }
    }
}
