//! Experiment Q8 — §2.1.5 step 2: "interpolation can be used in many
//! situations where data are missing. It is a generic derivation process
//! which is applicable to many data types in many domains."
//!
//! Accuracy and behaviour of temporal interpolation on NDVI-like seasonal
//! series: error grows with snapshot gap, exact at snapshots, never
//! extrapolates, and the kernel path records interpolations as tasks that
//! replay faithfully.

use gaea::adt::{AbsTime, GeoBox, Image, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea};
use gaea::core::task::TaskKind;
use gaea::core::{Query, QueryMethod};
use gaea::raster::interp::temporal_interp;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";
const DAY: i64 = 86_400;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

/// A seasonal NDVI-ish signal: smooth sinusoid over the year, per-pixel
/// phase offset so the field is not constant.
fn seasonal_value(pixel: usize, day: f64) -> f64 {
    let phase = pixel as f64 * 0.1;
    0.4 + 0.3 * ((day / 365.0) * std::f64::consts::TAU + phase).sin()
}

fn seasonal_image(rows: u32, cols: u32, day: f64) -> Image {
    let data: Vec<f64> = (0..(rows * cols) as usize)
        .map(|p| seasonal_value(p, day))
        .collect();
    Image::from_f64(rows, cols, data).unwrap()
}

fn ndvi_kernel(snapshot_days: &[i64]) -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("ndvi").attr("data", TypeTag::Image))
        .unwrap();
    for &d in snapshot_days {
        g.insert_object(
            "ndvi",
            vec![
                ("data", Value::image(seasonal_image(8, 8, d as f64))),
                (SPATIAL, Value::GeoBox(africa())),
                (TEMPORAL, Value::AbsTime(AbsTime(d * DAY))),
            ],
        )
        .unwrap();
    }
    g
}

/// Mean absolute interpolation error at mid-gap for a given snapshot gap.
fn midgap_error(gap_days: i64) -> f64 {
    let e = seasonal_image(8, 8, 0.0);
    let l = seasonal_image(8, 8, gap_days as f64);
    let mid = gap_days as f64 / 2.0;
    let out = temporal_interp(
        &e,
        AbsTime(0),
        &l,
        AbsTime(gap_days * DAY),
        AbsTime((mid * DAY as f64) as i64),
    )
    .unwrap();
    let mut err = 0.0;
    for p in 0..out.len() {
        err += (out.get_flat(p) - seasonal_value(p, mid)).abs();
    }
    err / out.len() as f64
}

#[test]
fn error_grows_with_snapshot_gap() {
    // Denser archives interpolate better — the quantitative basis for
    // "interpolate before deriving" when snapshots are dense.
    let e7 = midgap_error(7);
    let e30 = midgap_error(30);
    let e90 = midgap_error(90);
    assert!(e7 < e30 && e30 < e90, "{e7} {e30} {e90}");
    // Weekly snapshots of a seasonal signal interpolate almost exactly.
    assert!(e7 < 1e-3, "weekly gap error {e7}");
    // Quarterly snapshots are visibly wrong.
    assert!(e90 > 0.01, "quarterly gap error {e90}");
}

#[test]
fn exact_at_snapshots_and_never_extrapolates() {
    let e = seasonal_image(4, 4, 0.0);
    let l = seasonal_image(4, 4, 30.0);
    // Exact at the bracketing instants.
    let at0 = temporal_interp(&e, AbsTime(0), &l, AbsTime(30 * DAY), AbsTime(0)).unwrap();
    assert_eq!(at0, e);
    // Outside the bracket: refused, not extrapolated.
    assert!(temporal_interp(&e, AbsTime(0), &l, AbsTime(30 * DAY), AbsTime(-DAY)).is_err());
    assert!(temporal_interp(&e, AbsTime(0), &l, AbsTime(30 * DAY), AbsTime(31 * DAY)).is_err());
    // Degenerate bracket (equal timestamps) is refused.
    assert!(temporal_interp(&e, AbsTime(0), &l, AbsTime(0), AbsTime(0)).is_err());
}

#[test]
fn kernel_interpolates_between_stored_snapshots() {
    let mut g = ndvi_kernel(&[0, 30]);
    let q = Query::class("ndvi").over(africa()).at(AbsTime(15 * DAY));
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Interpolated);
    let obj = &out.objects[0];
    assert_eq!(obj.timestamp(), Some(AbsTime(15 * DAY)));
    // The interpolation was recorded as a task with the target instant.
    let task = g.task(out.tasks[0]).unwrap().clone();
    assert_eq!(task.kind, TaskKind::Interpolation);
    assert_eq!(task.params["at"], Value::AbsTime(AbsTime(15 * DAY)));
    // It replays faithfully in an experiment.
    g.record_experiment("interp_mid", "mid-month NDVI", vec![task.id])
        .unwrap();
    assert!(g.reproduce_experiment("interp_mid").unwrap().is_faithful());
    // And the interpolated object now answers retrieval directly.
    let again = g.query(&q).unwrap();
    assert_eq!(again.method, QueryMethod::Retrieved);
}

#[test]
fn kernel_refuses_interpolation_outside_the_archive() {
    let mut g = ndvi_kernel(&[0, 30]);
    // Before the first snapshot: no bracket, nothing to derive either.
    let q = Query::class("ndvi").over(africa()).at(AbsTime(-10 * DAY));
    assert!(g.query(&q).is_err());
    // After the last snapshot likewise.
    let q = Query::class("ndvi").over(africa()).at(AbsTime(45 * DAY));
    assert!(g.query(&q).is_err());
}

#[test]
fn nearest_bracket_is_used() {
    // With snapshots at days 0, 10, 40: day 12 must interpolate between
    // 10 and 40 (the tightest bracket), not 0 and 40.
    let mut g = ndvi_kernel(&[0, 10, 40]);
    let q = Query::class("ndvi").over(africa()).at(AbsTime(12 * DAY));
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Interpolated);
    let task = g.task(out.tasks[0]).unwrap();
    let earlier = g.object(task.inputs["earlier"][0]).unwrap();
    let later = g.object(task.inputs["later"][0]).unwrap();
    assert_eq!(earlier.timestamp(), Some(AbsTime(10 * DAY)));
    assert_eq!(later.timestamp(), Some(AbsTime(40 * DAY)));
}
