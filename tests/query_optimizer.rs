//! The cost-based optimizer end to end: auto-created access paths,
//! `DEFINE INDEX` DDL, EXPLAIN plans on outcomes, `ORDER BY` / `LIMIT`
//! semantics, and the indexed ≡ full-scan equivalence the residual
//! re-check guarantees.
//!
//! The acceptance property: a kernel whose extent crossed
//! [`AUTO_INDEX_THRESHOLD`] answers every query through index or grid
//! paths with *exactly* the object set a below-threshold (full-scan)
//! kernel returns over the same logical data.

use gaea::adt::{AbsTime, GeoBox, TimeRange, TypeTag, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec, AUTO_INDEX_THRESHOLD};
use gaea::core::query::{AccessPath, AttrCmp};
use gaea::core::{ObjectId, Query, QueryMethod, QueryStrategy};
use gaea::lang::{lower_program, parse, Retrieve as _};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const TAGS: [&str; 3] = ["alpha", "beta", "gamma"];

fn instant(k: usize) -> AbsTime {
    AbsTime(AbsTime::from_ymd(1988, 1, 1).unwrap().0 + k as i64 * 2_592_000)
}

/// Stored extents: disjoint 8°-wide grid cells along the equator.
fn cell(i: usize) -> GeoBox {
    let x = (i % 16) as f64 * 10.0;
    GeoBox::new(x, 0.0, x + 8.0, 8.0)
}

/// One observation: (val, tag index, cell index, instant index).
type ObsSpec = (i32, usize, usize, usize);

/// Deterministic pseudo-random specs, enough to cross the threshold.
fn obs_specs(n: usize) -> Vec<ObsSpec> {
    (0..n)
        .map(|i| {
            let h = i.wrapping_mul(2654435761) >> 7;
            ((h % 40) as i32, h % 3, (h / 3) % 16, (h / 5) % 10)
        })
        .collect()
}

fn obs_kernel(specs: &[ObsSpec]) -> (Gaea, Vec<ObjectId>) {
    let mut g = Gaea::in_memory();
    g.define_class(
        ClassSpec::base("obs")
            .attr("val", TypeTag::Int4)
            .attr("tag", TypeTag::Char16),
    )
    .unwrap();
    let mut ids = Vec::with_capacity(specs.len());
    for (val, tag, cell_i, time_i) in specs {
        ids.push(
            g.insert_object(
                "obs",
                vec![
                    ("val", Value::Int4(*val)),
                    ("tag", Value::Char16(TAGS[*tag % 3].into())),
                    ("spatialextent", Value::GeoBox(cell(*cell_i))),
                    ("timestamp", Value::AbsTime(instant(*time_i))),
                ],
            )
            .unwrap(),
        );
    }
    (g, ids)
}

/// The heap-scan model: which stored specs satisfy the query.
fn model_ids(
    specs: &[ObsSpec],
    ids: &[ObjectId],
    val: Option<(AttrCmp, i32)>,
    tag: Option<usize>,
    window: Option<GeoBox>,
    time: Option<(usize, usize)>,
) -> Vec<u64> {
    let mut out: Vec<u64> = specs
        .iter()
        .zip(ids)
        .filter(|((v, t, c, k), _)| {
            val.is_none_or(|(cmp, rhs)| match cmp {
                AttrCmp::Eq => *v == rhs,
                AttrCmp::Lt => *v < rhs,
                AttrCmp::Gt => *v > rhs,
            }) && tag.is_none_or(|want| *t % 3 == want % 3)
                && window.is_none_or(|w| cell(*c).intersects(&w))
                && time.is_none_or(|(a, b)| {
                    let t = instant(*k);
                    instant(a.min(b)) <= t && t <= instant(a.max(b))
                })
        })
        .map(|(_, id)| id.raw())
        .collect();
    out.sort_unstable();
    out
}

fn outcome_ids(out: &gaea::core::QueryOutcome) -> Vec<u64> {
    let mut ids: Vec<u64> = out.objects.iter().map(|o| o.id.raw()).collect();
    ids.sort_unstable();
    ids
}

fn big_n() -> usize {
    AUTO_INDEX_THRESHOLD as usize + 44
}

// ----------------------------------------------------------------------
// Acceptance: indexed ≡ full scan
// ----------------------------------------------------------------------

/// A below-threshold kernel answers by full scan; an above-threshold
/// kernel over the same logical prefix (plus padding no predicate can
/// match) answers by index — the ids must agree exactly.
#[test]
fn indexed_kernel_equals_full_scan_kernel() {
    let shared = obs_specs(60);
    let (mut small, small_ids) = obs_kernel(&shared);
    let (mut big, big_ids) = obs_kernel(&shared);
    assert_eq!(small_ids, big_ids, "identical insertion order, same oids");
    for _ in 0..big_n() {
        big.insert_object(
            "obs",
            vec![
                ("val", Value::Int4(1000)),
                ("tag", Value::Char16("padding".into())),
                (
                    "spatialextent",
                    Value::GeoBox(GeoBox::new(500.0, 500.0, 501.0, 501.0)),
                ),
                ("timestamp", Value::AbsTime(instant(99))),
            ],
        )
        .unwrap();
    }
    for q in [
        Query::class("obs")
            .with_strategy(QueryStrategy::RetrieveOnly)
            .filter("val", AttrCmp::Eq, Value::Int4(7)),
        Query::class("obs")
            .with_strategy(QueryStrategy::RetrieveOnly)
            .filter("val", AttrCmp::Lt, Value::Int4(9)),
        Query::class("obs")
            .with_strategy(QueryStrategy::RetrieveOnly)
            .filter("tag", AttrCmp::Eq, Value::Char16("beta".into()))
            .filter("val", AttrCmp::Gt, Value::Int4(30)),
        Query::class("obs")
            .with_strategy(QueryStrategy::RetrieveOnly)
            .over(GeoBox::new(15.0, -2.0, 42.0, 10.0))
            .filter("val", AttrCmp::Lt, Value::Int4(100)),
        Query::class("obs")
            .with_strategy(QueryStrategy::RetrieveOnly)
            .during(TimeRange::new(instant(2), instant(5)))
            .filter("val", AttrCmp::Lt, Value::Int4(100)),
    ] {
        let by_scan = small.query(&q).map(|o| outcome_ids(&o));
        let by_index = big.query(&q).map(|o| outcome_ids(&o));
        match (by_scan, by_index) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{q:?}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{q:?}"),
            (a, b) => panic!("paths diverged on {q:?}: {a:?} vs {b:?}"),
        }
        // The big kernel really used an index or grid, not a full scan.
        let plan = &big.query(&q).unwrap().plans[0];
        assert!(
            !matches!(plan.path, AccessPath::FullScan),
            "expected an indexed path, got {plan}"
        );
        // The small kernel stayed below the auto-index threshold.
        let plan = &small.query(&q).unwrap().plans[0];
        assert!(matches!(plan.path, AccessPath::FullScan), "got {plan}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over an above-threshold extent, every generated conjunction of
    /// value/tag/spatial/temporal predicates answers through the
    /// optimizer with exactly the model's (heap-semantics) object set.
    #[test]
    fn optimizer_answers_match_heap_model(
        val in prop::option::of((
            prop_oneof![Just(AttrCmp::Eq), Just(AttrCmp::Lt), Just(AttrCmp::Gt)],
            0i32..40,
        )),
        tag in prop::option::of(0usize..3),
        win in prop::option::of(0usize..16),
        time in prop::option::of((0usize..10, 0usize..10)),
    ) {
        let specs = obs_specs(big_n());
        let (mut g, ids) = obs_kernel(&specs);
        let mut q = Query::class("obs").with_strategy(QueryStrategy::RetrieveOnly);
        if let Some((cmp, rhs)) = val {
            q = q.filter("val", cmp, Value::Int4(rhs));
        }
        if let Some(t) = tag {
            q = q.filter("tag", AttrCmp::Eq, Value::Char16(TAGS[t].into()));
        }
        let window = win.map(|j| {
            let x = (j % 16) as f64 * 10.0;
            GeoBox::new(x - 5.0, -2.0, x + 12.0, 10.0)
        });
        if let Some(w) = window {
            q = q.over(w);
        }
        if let Some((a, b)) = time {
            q = q.during(TimeRange::new(instant(a.min(b)), instant(a.max(b))));
        }
        let expected = model_ids(&specs, &ids, val, tag, window, time);
        match g.query(&q) {
            Ok(out) => {
                prop_assert_eq!(outcome_ids(&out), expected);
                prop_assert_eq!(out.plans.len(), 1);
            }
            Err(e) => prop_assert!(
                expected.is_empty(),
                "query failed with {e} but the model matches {expected:?}"
            ),
        }
        // Second run answers from the now-built access paths, same set.
        if !expected.is_empty() {
            prop_assert_eq!(outcome_ids(&g.query(&q).unwrap()), expected);
        }
    }
}

// ----------------------------------------------------------------------
// EXPLAIN plans
// ----------------------------------------------------------------------

#[test]
fn plans_surface_the_chosen_access_path() {
    let specs = obs_specs(big_n());
    let (mut g, _ids) = obs_kernel(&specs);
    let eq = Query::class("obs")
        .with_strategy(QueryStrategy::RetrieveOnly)
        .filter("val", AttrCmp::Eq, Value::Int4(11));
    let out = g.query(&eq).unwrap();
    assert!(
        matches!(&out.plans[0].path, AccessPath::IndexEq { attr } if attr == "val"),
        "{}",
        out.plans[0]
    );
    assert!(
        out.plans[0].estimated_rows < specs.len() as u64,
        "equality estimate must undercut the full extent"
    );
    let lt = Query::class("obs")
        .with_strategy(QueryStrategy::RetrieveOnly)
        .filter("val", AttrCmp::Lt, Value::Int4(4));
    let out = g.query(&lt).unwrap();
    assert!(
        matches!(&out.plans[0].path, AccessPath::IndexRange { attr } if attr == "val"),
        "{}",
        out.plans[0]
    );
    let spatial = Query::class("obs")
        .with_strategy(QueryStrategy::RetrieveOnly)
        .over(GeoBox::new(20.0, 1.0, 23.0, 4.0));
    let out = g.query(&spatial).unwrap();
    assert!(
        matches!(&out.plans[0].path, AccessPath::GridProbe { attr } if attr == "spatialextent"),
        "{}",
        out.plans[0]
    );
    // An unfiltered query stays a full scan, and its estimate is the
    // maintained row count — the statistics follow the extent.
    let all = Query::class("obs").with_strategy(QueryStrategy::RetrieveOnly);
    let out = g.query(&all).unwrap();
    assert!(matches!(out.plans[0].path, AccessPath::FullScan));
    assert_eq!(out.plans[0].estimated_rows, specs.len() as u64);
    // The Display form is the EXPLAIN line.
    let line = out.plans[0].to_string();
    assert!(line.contains("obs") && line.contains("full scan"), "{line}");
}

#[test]
fn small_extents_stay_unindexed() {
    let specs = obs_specs(40);
    let (mut g, _ids) = obs_kernel(&specs);
    let q = Query::class("obs")
        .with_strategy(QueryStrategy::RetrieveOnly)
        .filter("val", AttrCmp::Eq, Value::Int4(specs[0].0));
    let out = g.query(&q).unwrap();
    assert!(
        matches!(out.plans[0].path, AccessPath::FullScan),
        "below-threshold extents must not pay index maintenance: {}",
        out.plans[0]
    );
}

// ----------------------------------------------------------------------
// ORDER BY / LIMIT
// ----------------------------------------------------------------------

/// The answer is sorted by the attribute (ids break ties ascending),
/// the limit keeps the top of that order, and the index-ordered
/// short-circuit agrees with the sort-everything path.
#[test]
fn order_by_and_limit_shape_the_answer() {
    let specs = obs_specs(big_n());
    let (mut g, _ids) = obs_kernel(&specs);
    let full = g
        .retrieve("RETRIEVE * FROM obs WHERE val > 5 ORDER BY val DESC")
        .unwrap();
    let vals: Vec<i32> = full
        .objects
        .iter()
        .map(|o| o.attr("val").and_then(Value::as_i64).unwrap() as i32)
        .collect();
    assert!(vals.windows(2).all(|w| w[0] >= w[1]), "descending order");
    for w in full.objects.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.attr("val") == b.attr("val") {
            assert!(a.id < b.id, "ties break by object id ascending");
        }
    }
    let limited = g
        .retrieve("RETRIEVE * FROM obs WHERE val > 5 ORDER BY val DESC LIMIT 7")
        .unwrap();
    assert_eq!(limited.objects.len(), 7);
    let full_ids: Vec<u64> = full.objects.iter().take(7).map(|o| o.id.raw()).collect();
    let lim_ids: Vec<u64> = limited.objects.iter().map(|o| o.id.raw()).collect();
    assert_eq!(lim_ids, full_ids, "short-circuit ≡ sort-everything");
    assert!(
        matches!(&limited.plans[0].path, AccessPath::IndexOrdered { attr } if attr == "val"),
        "{}",
        limited.plans[0]
    );
    // LIMIT 0 is a legal, empty answer.
    let none = g
        .retrieve("RETRIEVE * FROM obs ORDER BY val LIMIT 0")
        .unwrap();
    assert!(none.objects.is_empty());
    assert_eq!(none.method, QueryMethod::Retrieved);
    // ORDER BY on an unknown attribute is rejected before any stage.
    let err = g
        .retrieve("RETRIEVE * FROM obs ORDER BY bogus LIMIT 3")
        .unwrap_err();
    assert!(err.to_string().contains("bogus"), "{err}");
}

/// Below the threshold no index exists: ORDER BY / LIMIT run through
/// the plain sort path and produce the same shape.
#[test]
fn order_by_limit_work_without_indexes() {
    let specs = obs_specs(50);
    let (mut g, _ids) = obs_kernel(&specs);
    let out = g
        .retrieve("RETRIEVE * FROM obs ORDER BY val LIMIT 5")
        .unwrap();
    assert_eq!(out.objects.len(), 5);
    let vals: Vec<i32> = out
        .objects
        .iter()
        .map(|o| o.attr("val").and_then(Value::as_i64).unwrap() as i32)
        .collect();
    assert!(vals.windows(2).all(|w| w[0] <= w[1]), "ascending order");
    let mut sorted = specs.iter().map(|(v, ..)| *v).collect::<Vec<_>>();
    sorted.sort_unstable();
    assert_eq!(vals, sorted[..5].to_vec());
}

// ----------------------------------------------------------------------
// DEFINE INDEX DDL
// ----------------------------------------------------------------------

/// `DEFINE INDEX` forces access paths below the auto threshold — the
/// ordered index for scalars, the spatial grid for box attributes —
/// and is idempotent.
#[test]
fn define_index_ddl_forces_access_paths() {
    let mut g = Gaea::in_memory();
    let prog = parse(
        r#"
CLASS obs ( // small, hand-indexed extent
  ATTRIBUTES:
    val = int4;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)
DEFINE INDEX val ON obs
DEFINE INDEX spatialextent ON obs
"#,
    )
    .unwrap();
    let lowered = lower_program(&mut g, &prog).unwrap();
    assert_eq!(
        lowered.indexes,
        vec![
            ("obs".to_string(), "val".to_string()),
            ("obs".to_string(), "spatialextent".to_string())
        ]
    );
    for i in 0..30 {
        g.insert_object(
            "obs",
            vec![
                ("val", Value::Int4(i % 5)),
                ("spatialextent", Value::GeoBox(cell(i as usize))),
                ("timestamp", Value::AbsTime(instant(i as usize % 4))),
            ],
        )
        .unwrap();
    }
    let out = g.retrieve("RETRIEVE * FROM obs WHERE val = 2").unwrap();
    assert!(
        matches!(&out.plans[0].path, AccessPath::IndexEq { attr } if attr == "val"),
        "explicit DDL ignores the size threshold: {}",
        out.plans[0]
    );
    assert_eq!(out.objects.len(), 6);
    let out = g
        .retrieve("RETRIEVE * FROM obs WHERE WITHIN(20, 1, 23, 4) AND val < 100")
        .unwrap();
    assert!(
        matches!(&out.plans[0].path, AccessPath::GridProbe { attr } if attr == "spatialextent"),
        "{}",
        out.plans[0]
    );
    // Idempotent, and unknown attributes error.
    g.define_index("obs", "val").unwrap();
    let err = g.define_index("obs", "bogus").unwrap_err();
    assert!(err.to_string().contains("bogus"), "{err}");
}

// ----------------------------------------------------------------------
// Stats and indexes through refresh_all and background-job commits
// ----------------------------------------------------------------------

fn doubling_site() -> Arc<SimulatedSite> {
    Arc::new(SimulatedSite::new("site", |_def, inputs| {
        let v = inputs["x"][0]
            .attr("v")
            .and_then(Value::as_i64)
            .unwrap_or(0);
        let mut out = BTreeMap::new();
        out.insert("v".to_string(), Value::Int4((v as i32) * 2));
        Ok(out)
    }))
}

/// Derivations committed by background-job pumps and `refresh_all`
/// re-firings go through the same store mutations as everything else,
/// so the explicit index on the output class keeps answering exactly
/// and the maintained row statistics follow the extent.
#[test]
fn stats_and_indexes_survive_refresh_and_job_commits() {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_class(ClassSpec::derived("out").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_external_process(ProcessSpec::new("REMOTE", "out").arg("x", "obs"), "site")
        .unwrap();
    g.register_site("site", doubling_site());
    g.define_index("out", "v").unwrap();
    let src = g
        .insert_object("obs", vec![("v", Value::Int4(10))])
        .unwrap();
    // Background job: submit, await, then query the committed result.
    // (At one row the planner rightly keeps the heap walk — an index
    // cannot beat it — so only the answer is asserted here.)
    let job = g.retrieve_job("RETRIEVE * FROM out DERIVE").unwrap();
    g.await_job(job, Duration::from_secs(10)).unwrap();
    let q20 = Query::class("out")
        .with_strategy(QueryStrategy::RetrieveOnly)
        .filter("v", AttrCmp::Eq, Value::Int4(20));
    let out = g.query(&q20).unwrap();
    assert_eq!(out.objects.len(), 1, "job-committed object answers");
    // Mutate the input, refresh: the re-derived object must be indexed
    // too, and with two distinct keys the index now beats the heap for
    // both the job-committed and the refresh-committed object.
    g.update_object(src, vec![("v", Value::Int4(21))]).unwrap();
    let report = g.refresh_all().unwrap();
    assert_eq!(report.refreshed(), 1);
    let q42 = Query::class("out")
        .with_strategy(QueryStrategy::RetrieveOnly)
        .filter("v", AttrCmp::Eq, Value::Int4(42));
    let out = g.query(&q42).unwrap();
    assert_eq!(out.objects.len(), 1, "refresh-committed object is indexed");
    assert!(
        matches!(&out.plans[0].path, AccessPath::IndexEq { attr } if attr == "v"),
        "{}",
        out.plans[0]
    );
    let out = g.query(&q20).unwrap();
    assert_eq!(out.objects.len(), 1, "job-committed object is indexed");
    assert!(
        matches!(&out.plans[0].path, AccessPath::IndexEq { attr } if attr == "v"),
        "{}",
        out.plans[0]
    );
    // Statistics followed every commit path: the full-scan estimate is
    // the true extent size.
    let all = Query::class("out").with_strategy(QueryStrategy::RetrieveOnly);
    let out = g.query(&all).unwrap();
    assert_eq!(
        out.plans[0].estimated_rows as usize,
        g.count_objects("out").unwrap()
    );
    assert_eq!(out.objects.len(), g.count_objects("out").unwrap());
}
