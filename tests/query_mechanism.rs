//! Experiments Q1 & Q8 — the §2.1.5 three-step query mechanism and
//! interpolation as a generic derivation.
//!
//! "1. Direct data retrieval [...] 2. Data interpolation (temporal or
//! spatial) [...] 3. Data are computed, based on a derivation relationship.
//! Steps 2 and 3 are prioritized according to the user's needs."

use gaea::adt::{AbsTime, GeoBox, TimeRange, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{KernelError, Query, QueryMethod, QueryStrategy};
use gaea::workload::ndvi_series;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

/// Kernel with an `ndvi` class (base-ish: storable directly) and a derived
/// smoothing class so both interpolation and derivation are available.
fn kernel() -> Gaea {
    let mut g = Gaea::in_memory().with_user("q1");
    g.define_class(ClassSpec::base("ndvi").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(ClassSpec::derived("ndvi_smooth").attr("data", TypeTag::Image))
        .unwrap();
    g.define_process(
        ProcessSpec::new("smooth", "ndvi_smooth")
            .arg("src", "ndvi")
            .template(Template {
                assertions: vec![],
                mappings: vec![
                    Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "img_scale",
                            vec![Expr::proj("src", "data"), Expr::float(1.0)],
                        ),
                    },
                    Mapping {
                        attr: "spatialextent".into(),
                        expr: Expr::AnyOf(Box::new(Expr::proj("src", "spatialextent"))),
                    },
                    Mapping {
                        attr: "timestamp".into(),
                        expr: Expr::AnyOf(Box::new(Expr::proj("src", "timestamp"))),
                    },
                ],
            }),
    )
    .unwrap();
    g
}

fn store_series(g: &mut Gaea, months: usize) -> Vec<AbsTime> {
    let series = ndvi_series(8, 8, months, AbsTime::from_ymd(1988, 1, 1).unwrap(), 0.0, 5);
    let mut times = Vec::new();
    for (t, img) in series {
        g.insert_object(
            "ndvi",
            vec![
                ("data", Value::image(img)),
                ("spatialextent", Value::GeoBox(africa())),
                ("timestamp", Value::AbsTime(t)),
            ],
        )
        .unwrap();
        times.push(t);
    }
    times
}

#[test]
fn step1_exact_hit_retrieves() {
    let mut g = kernel();
    let times = store_series(&mut g, 6);
    let out = g
        .query(&Query::class("ndvi").over(africa()).at(times[2]))
        .unwrap();
    assert_eq!(out.method, QueryMethod::Retrieved);
    assert!(out.tasks.is_empty(), "no computation recorded");
}

#[test]
fn step2_interpolation_fills_missing_instant() {
    let mut g = kernel();
    let times = store_series(&mut g, 6);
    // Halfway between two monthly snapshots.
    let missing = AbsTime((times[2].0 + times[3].0) / 2);
    let out = g
        .query(&Query::class("ndvi").over(africa()).at(missing))
        .unwrap();
    assert_eq!(out.method, QueryMethod::Interpolated);
    assert_eq!(out.objects.len(), 1);
    assert_eq!(out.objects[0].timestamp(), Some(missing));
    // The interpolation was recorded as a task with the target time.
    let task = g.task(out.tasks[0]).unwrap();
    assert_eq!(task.params["at"], Value::AbsTime(missing));
    // Interpolated pixel values are bracketed by the neighbours.
    let obj = &out.objects[0];
    let img = obj.attr("data").unwrap().as_image().unwrap().clone();
    let e = g.object(task.inputs["earlier"][0]).unwrap();
    let l = g.object(task.inputs["later"][0]).unwrap();
    let ei = e.attr("data").unwrap().as_image().unwrap().clone();
    let li = l.attr("data").unwrap().as_image().unwrap().clone();
    for p in 0..img.len() {
        let lo = ei.get_flat(p).min(li.get_flat(p));
        let hi = ei.get_flat(p).max(li.get_flat(p));
        assert!(img.get_flat(p) >= lo - 1e-12 && img.get_flat(p) <= hi + 1e-12);
    }
}

#[test]
fn interpolation_never_extrapolates() {
    let mut g = kernel();
    let times = store_series(&mut g, 3);
    let beyond = AbsTime(times[2].0 + 40 * 86_400);
    let err = g
        .query(&Query::class("ndvi").over(africa()).at(beyond))
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");
}

#[test]
fn step3_derivation_when_interpolation_inapplicable() {
    let mut g = kernel();
    let times = store_series(&mut g, 3);
    // ndvi_smooth has no stored objects and no bracketing snapshots —
    // derivation must fire the smooth process.
    let out = g
        .query(
            &Query::class("ndvi_smooth")
                .over(africa())
                .at(times[1])
                .with_strategy(QueryStrategy::PreferInterpolation),
        )
        .unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(g.task(out.tasks[0]).unwrap().process_name, "smooth");
}

#[test]
fn strategy_orders_steps_2_and_3() {
    // With snapshots bracketing the instant AND a derivation available,
    // the strategy decides which runs.
    let mut g = kernel();
    let times = store_series(&mut g, 4);
    // Make a derived ndvi_smooth snapshot at each stored time, so both
    // interpolation (between smooth snapshots) and derivation (from ndvi)
    // could answer an in-between query on ndvi_smooth.
    for t in &times {
        let out = g
            .query(
                &Query::class("ndvi_smooth")
                    .over(africa())
                    .at(*t)
                    .with_strategy(QueryStrategy::PreferDerivation),
            )
            .unwrap();
        assert_eq!(out.method, QueryMethod::Derived);
    }
    let missing = AbsTime((times[1].0 + times[2].0) / 2);
    // Interpolation-first finds the bracket.
    let interp = g
        .query(
            &Query::class("ndvi_smooth")
                .over(africa())
                .at(missing)
                .with_strategy(QueryStrategy::PreferInterpolation),
        )
        .unwrap();
    assert_eq!(interp.method, QueryMethod::Interpolated);
}

#[test]
fn retrieve_only_never_computes() {
    let mut g = kernel();
    store_series(&mut g, 3);
    let q = Query::class("ndvi_smooth").with_strategy(QueryStrategy::RetrieveOnly);
    let err = g.query(&q).unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)));
    assert_eq!(
        g.count_objects("ndvi_smooth").unwrap(),
        0,
        "nothing materialized"
    );
}

#[test]
fn window_queries_skip_interpolation() {
    let mut g = kernel();
    let times = store_series(&mut g, 6);
    // A window covering two snapshots retrieves both, no synthesis.
    let window = TimeRange::new(times[1], times[2]);
    let out = g
        .query(&Query::class("ndvi").over(africa()).during(window))
        .unwrap();
    assert_eq!(out.method, QueryMethod::Retrieved);
    assert_eq!(out.objects.len(), 2);
}

#[test]
fn stale_step1_hit_refires_under_fresh_and_serves_history_without() {
    // Derive a smooth object, then mutate its input: the stored
    // derivation is history. Step 1 must keep serving it (flagged) for a
    // plain query, and a FRESH query must re-fire it through step 3's
    // refresh machinery instead.
    let mut g = kernel();
    let times = store_series(&mut g, 3);
    let derived = g
        .query(
            &Query::class("ndvi_smooth")
                .over(africa())
                .at(times[0])
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .unwrap();
    let stale_obj = derived.objects[0].id;
    let src = g.task(derived.tasks[0]).unwrap().inputs["src"][0];
    g.update_object(
        src,
        vec![("data", derived.objects[0].attr("data").unwrap().clone())],
    )
    .unwrap();
    assert!(g.is_stale(stale_obj));

    // Plain retrieval: history served, staleness flagged, nothing fired.
    let history = g
        .query(&Query::class("ndvi_smooth").over(africa()).at(times[0]))
        .unwrap();
    assert_eq!(history.method, QueryMethod::Retrieved);
    assert!(history.is_stale(stale_obj));
    assert!(history.tasks.is_empty());

    // FRESH: the stale hit is re-fired; the served set is current.
    let fresh = g
        .query(
            &Query::class("ndvi_smooth")
                .over(africa())
                .at(times[0])
                .fresh(),
        )
        .unwrap();
    assert!(!fresh.any_stale());
    assert!(!fresh.tasks.is_empty(), "refresh recorded a firing");
    assert!(fresh.objects.iter().all(|o| o.id != stale_obj));
    assert!(fresh.objects.iter().all(|o| !g.is_stale(o.id)));
    // The old object remains on record as history.
    assert!(g.object(stale_obj).is_ok());
}

#[test]
fn fresh_is_a_noop_on_current_answers() {
    let mut g = kernel();
    let times = store_series(&mut g, 3);
    let out = g
        .query(&Query::class("ndvi").over(africa()).at(times[1]).fresh())
        .unwrap();
    assert_eq!(out.method, QueryMethod::Retrieved);
    assert!(out.tasks.is_empty(), "nothing to refresh, nothing fired");
}

#[test]
fn zero_binding_candidates_error_cleanly() {
    // (1) The deriving process's input class holds no objects at all:
    // planning stops at the missing base class with a diagnosis.
    let mut g = kernel();
    let err = g
        .query(&Query::class("ndvi_smooth").with_strategy(QueryStrategy::PreferDerivation))
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");
    assert!(
        err.to_string().contains("ndvi"),
        "diagnosis names the base: {err}"
    );

    // (2) Objects exist but the spatial window excludes every candidate.
    let mut g = kernel();
    store_series(&mut g, 3);
    let amazon = GeoBox::new(-75.0, -15.0, -50.0, 5.0);
    let err = g
        .query(
            &Query::class("ndvi_smooth")
                .over(amazon)
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");

    // (3) A SETOF threshold above the stored count: the plan is
    // infeasible, diagnosed rather than panicking.
    let mut g = kernel();
    g.define_class(ClassSpec::derived("ndvi_stack").attr("data", TypeTag::Image))
        .unwrap();
    g.define_process(
        ProcessSpec::new("stack", "ndvi_stack")
            .setof_arg("srcs", "ndvi", 5)
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "data".into(),
                    expr: Expr::apply("composite", vec![Expr::Arg("srcs".into())]),
                }],
            }),
    )
    .unwrap();
    store_series(&mut g, 3); // 3 < 5
    let err = g
        .query(
            &Query::class("ndvi_stack")
                .over(africa())
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");

    // (4) USING pins a process that exists but cannot bind.
    let mut g = kernel();
    let err = g
        .query(
            &Query::class("ndvi_smooth")
                .using("smooth")
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");
    // And a USING process that does not exist fails fast, before stages.
    let err = g
        .query(
            &Query::class("ndvi_smooth")
                .using("phantom")
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .unwrap_err();
    assert!(matches!(err, KernelError::NotFound { .. }), "{err}");
}

#[test]
fn spatial_windows_filter_retrieval() {
    let mut g = kernel();
    store_series(&mut g, 2);
    let amazon = GeoBox::new(-75.0, -15.0, -50.0, 5.0);
    let err = g
        .query(
            &Query::class("ndvi")
                .over(amazon)
                .with_strategy(QueryStrategy::RetrieveOnly),
        )
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)));
    let hit = g.query(&Query::class("ndvi").over(africa())).unwrap();
    assert_eq!(hit.objects.len(), 2);
}
