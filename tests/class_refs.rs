//! §4.3 extension — non-primitive classes as attribute types.
//!
//! The paper's limitation 1: "At this time, non-primitive classes can only
//! be composed of primitive classes as provided within POSTGRES. [...]
//! future applications may require this feature." These tests exercise
//! the feature: reference attributes (`ObjRef`) whose target class is
//! declared on the attribute, validated at insert time, and dereferenced
//! through the auto-defined retrieval function.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea};
use gaea::core::ObjectId;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

/// Kernel with a scene class and a survey-report class that *references*
/// the scene it documents (a non-primitive attribute), plus a revision
/// chain: reports may reference a prior report of the same class.
fn kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("scene").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(
        ClassSpec::derived("report")
            .attr("summary", TypeTag::Text)
            .ref_attr("subject", "scene")
            .ref_attr("supersedes", "report")
            .no_extents(),
    )
    .unwrap();
    g
}

fn insert_scene(g: &mut Gaea, fill: f64) -> ObjectId {
    g.insert_object(
        "scene",
        vec![
            (
                "data",
                Value::image(Image::filled(4, 4, PixType::Float8, fill)),
            ),
            (SPATIAL, Value::GeoBox(africa())),
            (
                TEMPORAL,
                Value::AbsTime(AbsTime::from_ymd(1986, 1, 15).unwrap()),
            ),
        ],
    )
    .unwrap()
}

#[test]
fn reference_attributes_store_and_deref() {
    let mut g = kernel();
    let scene = insert_scene(&mut g, 7.0);
    let report = g
        .insert_object(
            "report",
            vec![
                ("summary", Value::Text("mostly savanna".into())),
                ("subject", Value::ObjRef(scene.raw())),
            ],
        )
        .unwrap();
    // The auto-defined retrieval function follows the reference.
    let target = g.deref_attr(report, "subject").unwrap();
    assert_eq!(target.id, scene);
    assert_eq!(
        target.attr("data").unwrap().as_image().unwrap().get(0, 0),
        7.0
    );
    // Dereferencing a primitive attribute is a schema error.
    assert!(g.deref_attr(report, "summary").is_err());
    // Dereferencing a null reference reports no data.
    assert!(g.deref_attr(report, "supersedes").is_err());
}

#[test]
fn references_are_class_checked_at_insert() {
    let mut g = kernel();
    let scene = insert_scene(&mut g, 1.0);
    let report = g
        .insert_object(
            "report",
            vec![
                ("summary", Value::Text("v1".into())),
                ("subject", Value::ObjRef(scene.raw())),
            ],
        )
        .unwrap();
    // A report is not a scene: wrong-class reference rejected.
    let err = g
        .insert_object(
            "report",
            vec![
                ("summary", Value::Text("v2".into())),
                ("subject", Value::ObjRef(report.raw())),
            ],
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("must reference class scene"),
        "{err}"
    );
    // A dangling OID is rejected.
    let err = g
        .insert_object("report", vec![("subject", Value::ObjRef(999_999))])
        .unwrap_err();
    assert!(
        err.to_string().contains("999999") || err.to_string().contains("oid"),
        "{err}"
    );
    // A non-reference value in a reference slot is rejected.
    let err = g
        .insert_object("report", vec![("subject", Value::Int4(5))])
        .unwrap_err();
    assert!(err.to_string().contains("reference"), "{err}");
    // Nothing partial was stored by the failures.
    assert_eq!(g.count_objects("report").unwrap(), 1);
}

#[test]
fn self_referencing_revision_chains() {
    let mut g = kernel();
    let scene = insert_scene(&mut g, 2.0);
    let v1 = g
        .insert_object(
            "report",
            vec![
                ("summary", Value::Text("first pass".into())),
                ("subject", Value::ObjRef(scene.raw())),
            ],
        )
        .unwrap();
    let v2 = g
        .insert_object(
            "report",
            vec![
                ("summary", Value::Text("corrected cloud mask".into())),
                ("subject", Value::ObjRef(scene.raw())),
                ("supersedes", Value::ObjRef(v1.raw())),
            ],
        )
        .unwrap();
    // Walk the chain.
    let prev = g.deref_attr(v2, "supersedes").unwrap();
    assert_eq!(prev.id, v1);
    assert_eq!(
        prev.attr("summary"),
        Some(&Value::Text("first pass".into()))
    );
    // Both revisions document the same scene.
    assert_eq!(g.deref_attr(v1, "subject").unwrap().id, scene);
    assert_eq!(g.deref_attr(v2, "subject").unwrap().id, scene);
}

#[test]
fn ref_attr_definitions_resolve_against_the_catalog() {
    let mut g = Gaea::in_memory();
    // Referencing an unknown class fails at definition time.
    let err = g
        .define_class(ClassSpec::derived("bad").ref_attr("x", "no_such_class"))
        .unwrap_err();
    assert!(err.to_string().contains("no_such_class"), "{err}");
    // The failed definition left no class behind.
    assert!(g.catalog().class_by_name("bad").is_err());
}

#[test]
fn references_survive_save_load() {
    let mut g = kernel();
    let scene = insert_scene(&mut g, 3.5);
    let report = g
        .insert_object(
            "report",
            vec![
                ("summary", Value::Text("persisted".into())),
                ("subject", Value::ObjRef(scene.raw())),
            ],
        )
        .unwrap();
    let dir = std::env::temp_dir().join(format!("gaea-refs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    g.save(&dir).unwrap();
    let loaded = Gaea::load(&dir).unwrap();
    let target = loaded.deref_attr(report, "subject").unwrap();
    assert_eq!(target.id, scene);
    assert_eq!(
        target.attr("data").unwrap().as_image().unwrap().get(0, 0),
        3.5
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
