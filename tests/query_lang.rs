//! The declarative query surface end to end: `RETRIEVE … WHERE …` lowered
//! onto the kernel's plan/bind/fire/project pipeline.
//!
//! * an equivalence property: for generated predicates, `Gaea::retrieve`
//!   over the rendered text answers exactly like the hand-built
//!   `kernel/query` plan it lowers to;
//! * the cost-hint acceptance scenario: `DERIVE COST …` reverses the
//!   bind-stage heuristic's choice (and a process-declared `COST` supplies
//!   the default the query-level hint overrides);
//! * `USING`, `FRESH`, projection and the lowering error surface.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TimeRange, Value};
use gaea::core::kernel::Gaea;
use gaea::core::query::{AttrCmp, CostHint};
use gaea::core::{KernelError, ObjectId, Query, QueryMethod, QueryOutcome};
use gaea::lang::{lower_program, parse, Retrieve as _};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Equivalence property
// ----------------------------------------------------------------------

const TAGS: [&str; 3] = ["alpha", "beta", "gamma"];

fn instant(k: usize) -> AbsTime {
    AbsTime(AbsTime::from_ymd(1988, 1, 1).unwrap().0 + k as i64 * 2_592_000)
}

/// Stored extents: disjoint 8°-wide grid cells.
fn cell(i: usize) -> GeoBox {
    let x = i as f64 * 10.0;
    GeoBox::new(x, 0.0, x + 8.0, 8.0)
}

/// Query windows: straddle cell `j` fully and clip into cell `j + 1`.
fn window(j: usize) -> GeoBox {
    let x = j as f64 * 10.0;
    GeoBox::new(x - 5.0, -2.0, x + 12.0, 10.0)
}

/// One stored object: (val, tag index, cell index, instant index).
type ObjSpec = (i32, usize, usize, usize);

/// One generated query: spatial window, AT-vs-BETWEEN temporal pick,
/// value predicate, tag predicate.
#[derive(Debug, Clone)]
struct QuerySpec {
    within: Option<usize>,
    at: Option<usize>,
    between: Option<(usize, usize)>,
    val: Option<(AttrCmp, i32)>,
    tag: Option<usize>,
}

fn obs_kernel(objs: &[ObjSpec]) -> Gaea {
    let mut g = Gaea::in_memory();
    let prog = parse(
        r#"
CLASS obs ( // synthetic observations
  ATTRIBUTES:
    val = int4;
    tag = char16;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)
"#,
    )
    .unwrap();
    lower_program(&mut g, &prog).unwrap();
    for (val, tag, cell_i, time_i) in objs {
        g.insert_object(
            "obs",
            vec![
                ("val", Value::Int4(*val)),
                ("tag", Value::Char16(TAGS[*tag % TAGS.len()].into())),
                ("spatialextent", Value::GeoBox(cell(*cell_i))),
                ("timestamp", Value::AbsTime(instant(*time_i))),
            ],
        )
        .unwrap();
    }
    g
}

/// Render the spec as surface text (one path) …
fn spec_text(spec: &QuerySpec) -> String {
    let mut clauses: Vec<String> = Vec::new();
    if let Some((cmp, v)) = &spec.val {
        let op = match cmp {
            AttrCmp::Eq => "=",
            AttrCmp::Lt => "<",
            AttrCmp::Gt => ">",
        };
        clauses.push(format!("val {op} {v}"));
    }
    if let Some(t) = spec.tag {
        clauses.push(format!("tag = \"{}\"", TAGS[t % TAGS.len()]));
    }
    if let Some(j) = spec.within {
        let w = window(j);
        clauses.push(format!(
            "WITHIN({}, {}, {}, {})",
            w.xmin, w.ymin, w.xmax, w.ymax
        ));
    }
    if let Some(k) = spec.at {
        clauses.push(format!("AT {}", instant(k).0));
    } else if let Some((a, b)) = spec.between {
        clauses.push(format!("BETWEEN {} AND {}", instant(a).0, instant(b).0));
    }
    let mut text = "RETRIEVE * FROM obs".to_string();
    for (i, c) in clauses.iter().enumerate() {
        text.push_str(if i == 0 { " WHERE " } else { " AND " });
        text.push_str(c);
    }
    text
}

/// … and as a hand-built kernel query plan (the independent path).
fn spec_query(spec: &QuerySpec) -> Query {
    let mut q = Query::class("obs").with_strategy(gaea::core::QueryStrategy::RetrieveOnly);
    if let Some((cmp, v)) = &spec.val {
        q = q.filter("val", *cmp, Value::Int4(*v));
    }
    if let Some(t) = spec.tag {
        q = q.filter(
            "tag",
            AttrCmp::Eq,
            Value::Char16(TAGS[t % TAGS.len()].into()),
        );
    }
    if let Some(j) = spec.within {
        q = q.over(window(j));
    }
    if let Some(k) = spec.at {
        q = q.at(instant(k));
    } else if let Some((a, b)) = spec.between {
        q = q.during(TimeRange::new(instant(a), instant(b)));
    }
    q
}

fn ids(outcome: &QueryOutcome) -> Vec<u64> {
    let mut ids: Vec<u64> = outcome.objects.iter().map(|o| o.id.raw()).collect();
    ids.sort_unstable();
    ids
}

fn attr_cmp() -> impl Strategy<Value = AttrCmp> {
    prop_oneof![Just(AttrCmp::Eq), Just(AttrCmp::Lt), Just(AttrCmp::Gt)]
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::option::of(0usize..4),
        prop::option::of(0usize..5),
        prop::option::of((0usize..5, 0usize..5)),
        prop::option::of((attr_cmp(), 0i32..20)),
        prop::option::of(0usize..3),
    )
        .prop_map(|(within, at, between, val, tag)| QuerySpec {
            within,
            at,
            between,
            val,
            tag,
        })
}

fn obj_specs() -> impl Strategy<Value = Vec<ObjSpec>> {
    prop::collection::vec((0i32..20, 0usize..3, 0usize..4, 0usize..5), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Gaea::retrieve(text)` returns exactly the object set of the
    /// hand-built plan it lowers to — hit for hit, error for error.
    #[test]
    fn retrieve_text_equals_hand_built_plan(objs in obj_specs(), spec in query_spec()) {
        let mut g = obs_kernel(&objs);
        let text = spec_text(&spec);
        let by_plan = g.query(&spec_query(&spec));
        let by_text = g.retrieve(&text);
        match (by_plan, by_text) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(ids(&a), ids(&b), "{}", text);
                prop_assert_eq!(a.method, QueryMethod::Retrieved);
                prop_assert_eq!(b.method, QueryMethod::Retrieved);
            }
            (Err(KernelError::NoData(_)), Err(KernelError::NoData(_))) => {}
            (a, b) => prop_assert!(false, "diverged on {}: {:?} vs {:?}", text, a, b),
        }
    }

    /// Projection through the text surface keeps exactly the named
    /// attributes on every returned object.
    #[test]
    fn retrieve_projection_prunes_attrs(objs in obj_specs(), project_val in any::<bool>()) {
        prop_assume!(!objs.is_empty());
        let mut g = obs_kernel(&objs);
        let proj = if project_val { "val" } else { "tag, timestamp" };
        let out = g.retrieve(&format!("RETRIEVE {proj} FROM obs")).unwrap();
        let want: Vec<&str> = proj.split(", ").collect();
        for obj in &out.objects {
            let keys: Vec<&str> = obj.attrs.keys().map(String::as_str).collect();
            prop_assert_eq!(&keys, &want, "projection {} leaked attrs", proj);
        }
        // The unprojected query still serves every attribute.
        let full = g.retrieve("RETRIEVE * FROM obs").unwrap();
        prop_assert!(full.objects.iter().all(|o| o.attrs.len() == 4));
    }
}

// ----------------------------------------------------------------------
// Cost hints, USING, FRESH (directed scenarios)
// ----------------------------------------------------------------------

/// An ndvi → ndvi_smooth schema defined entirely through the language,
/// with two stored ndvi snapshots at distinct instants.
const SMOOTH_DDL: &str = r#"
CLASS ndvi (
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)

CLASS ndvi_smooth (
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: smooth
)

DEFINE PROCESS smooth (
  OUTPUT ndvi_smooth
  ARGUMENT ( src ndvi )
  TEMPLATE {
    MAPPINGS:
      ndvi_smooth.data = img_scale(src.data, 1.0);
      ndvi_smooth.spatialextent = ANYOF src.spatialextent;
      ndvi_smooth.timestamp = ANYOF src.timestamp;
  }
)
"#;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

/// Returns (kernel, early object, late object).
fn smooth_kernel(extra_ddl: &str) -> (Gaea, ObjectId, ObjectId) {
    let mut g = Gaea::in_memory();
    let prog = parse(&format!("{SMOOTH_DDL}\n{extra_ddl}")).unwrap();
    lower_program(&mut g, &prog).unwrap();
    let mut stored = Vec::new();
    for k in [0usize, 3] {
        stored.push(
            g.insert_object(
                "ndvi",
                vec![
                    (
                        "data",
                        Value::image(Image::filled(4, 4, PixType::Float8, 1.0 + k as f64)),
                    ),
                    ("spatialextent", Value::GeoBox(africa())),
                    ("timestamp", Value::AbsTime(instant(k))),
                ],
            )
            .unwrap(),
        );
    }
    (g, stored[0], stored[1])
}

fn fired_input(g: &Gaea, out: &QueryOutcome) -> ObjectId {
    let task = g.task(*out.tasks.last().unwrap()).unwrap();
    task.inputs["src"][0]
}

/// The acceptance scenario: with two admissible bindings, the bare
/// heuristic binds the earliest snapshot; `DERIVE COST newest` reverses
/// that choice — same store, same process, opposite binding.
#[test]
fn cost_hint_reverses_the_heuristic_choice() {
    let (mut g, early, _late) = smooth_kernel("");
    let out = g.retrieve("RETRIEVE * FROM ndvi_smooth DERIVE").unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(fired_input(&g, &out), early, "heuristic binds oldest-first");

    let (mut g, _early, late) = smooth_kernel("");
    let out = g
        .retrieve("RETRIEVE * FROM ndvi_smooth DERIVE COST newest")
        .unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(fired_input(&g, &out), late, "COST newest reverses it");
}

/// The same reversal through the compiled plan — `compile_retrieve`
/// exposes what the text lowers to.
#[test]
fn cost_hint_compiles_onto_the_plan() {
    let (g, _, _) = smooth_kernel("");
    let q = g
        .compile_retrieve("RETRIEVE data FROM ndvi_smooth DERIVE USING smooth COST newest FRESH")
        .unwrap();
    assert_eq!(q.cost, Some(CostHint::Newest));
    assert_eq!(q.using_process.as_deref(), Some("smooth"));
    assert_eq!(q.strategy, gaea::core::QueryStrategy::PreferDerivation);
    assert_eq!(q.projection, vec!["data".to_string()]);
    assert!(q.fresh);
    // No DERIVE clause ⇒ retrieval only.
    let q = g.compile_retrieve("RETRIEVE * FROM ndvi_smooth").unwrap();
    assert_eq!(q.strategy, gaea::core::QueryStrategy::RetrieveOnly);
}

/// A process-declared `COST newest` flips the default; the query-level
/// hint still overrides the declaration.
#[test]
fn process_declared_cost_is_the_default_and_query_overrides() {
    const HINTED: &str = r#"
CLASS smooth2 (
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: resmooth
)

DEFINE PROCESS resmooth (
  OUTPUT smooth2
  ARGUMENT ( src ndvi )
  COST newest
  TEMPLATE {
    MAPPINGS:
      smooth2.data = img_scale(src.data, 2.0);
      smooth2.spatialextent = ANYOF src.spatialextent;
      smooth2.timestamp = ANYOF src.timestamp;
  }
)
"#;
    let (mut g, _early, late) = smooth_kernel(HINTED);
    assert_eq!(
        g.catalog().process_by_name("resmooth").unwrap().cost,
        Some(CostHint::Newest),
        "DDL COST lowers onto the definition"
    );
    let out = g.retrieve("RETRIEVE * FROM smooth2 DERIVE").unwrap();
    assert_eq!(fired_input(&g, &out), late, "declared hint is the default");

    let (mut g, early, _late) = smooth_kernel(HINTED);
    let out = g
        .retrieve("RETRIEVE * FROM smooth2 DERIVE COST oldest")
        .unwrap();
    assert_eq!(fired_input(&g, &out), early, "query hint overrides");
}

/// `DERIVE USING p` pins the goal's producer among alternatives.
#[test]
fn using_pins_the_producing_process() {
    const ALT: &str = r#"
DEFINE PROCESS smooth_alt (
  OUTPUT ndvi_smooth
  ARGUMENT ( src ndvi )
  TEMPLATE {
    MAPPINGS:
      ndvi_smooth.data = img_scale(src.data, 3.0);
      ndvi_smooth.spatialextent = ANYOF src.spatialextent;
      ndvi_smooth.timestamp = ANYOF src.timestamp;
  }
)
"#;
    let (mut g, _, _) = smooth_kernel(ALT);
    let out = g
        .retrieve("RETRIEVE * FROM ndvi_smooth DERIVE USING smooth_alt")
        .unwrap();
    let task = g.task(out.tasks[0]).unwrap();
    assert_eq!(task.process_name, "smooth_alt");
    // USING a process that does not derive the target is rejected cleanly.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi DERIVE USING smooth_alt")
        .unwrap_err();
    assert!(err.to_string().contains("derives class"), "{err}");
}

/// `FRESH` refuses stale hits: the stale derivation is re-fired and the
/// fresh output served; without `FRESH` the flagged history is served.
#[test]
fn fresh_refires_stale_hits_and_plain_retrieve_serves_history() {
    let (mut g, early, _late) = smooth_kernel("");
    let derived = g.retrieve("RETRIEVE * FROM ndvi_smooth DERIVE").unwrap();
    let stale_obj = derived.objects[0].id;
    // Mutate the consumed input: the derivation is now stale.
    g.update_object(
        early,
        vec![(
            "data",
            Value::image(Image::filled(4, 4, PixType::Float8, 9.0)),
        )],
    )
    .unwrap();
    assert!(g.is_stale(stale_obj));

    // Without FRESH: history is served, flagged.
    let history = g.retrieve("RETRIEVE * FROM ndvi_smooth").unwrap();
    assert_eq!(history.method, QueryMethod::Retrieved);
    assert_eq!(history.objects[0].id, stale_obj);
    assert!(history.is_stale(stale_obj));
    assert!(history.tasks.is_empty());

    // With FRESH: the stale hit is re-fired and replaced.
    let fresh = g.retrieve("RETRIEVE * FROM ndvi_smooth FRESH").unwrap();
    assert_eq!(fresh.method, QueryMethod::Retrieved);
    assert!(!fresh.tasks.is_empty(), "a refresh firing was recorded");
    assert!(!fresh.any_stale());
    let served: Vec<ObjectId> = fresh.objects.iter().map(|o| o.id).collect();
    assert!(!served.contains(&stale_obj), "stale history not served");
    assert!(served.iter().all(|o| !g.is_stale(*o)));
}

/// A refreshed replacement must still satisfy the query's own predicates:
/// when re-derivation moves the timestamp out of the queried instant, the
/// replacement is not served — FRESH refuses, it does not misanswer.
#[test]
fn fresh_replacement_must_still_match_the_query() {
    let (mut g, early, _late) = smooth_kernel("");
    let t0 = instant(0);
    let derived = g
        .retrieve(&format!(
            "RETRIEVE * FROM ndvi_smooth WHERE AT {} DERIVE",
            t0.0
        ))
        .unwrap();
    let stale_obj = derived.objects[0].id;
    // Move the source snapshot to a different instant: the derivation is
    // stale, and any re-derivation lands on the new timestamp.
    let moved = instant(7);
    g.update_object(early, vec![("timestamp", Value::AbsTime(moved))])
        .unwrap();
    assert!(g.is_stale(stale_obj));

    // Plain query at t0 serves the flagged history.
    let history = g
        .retrieve(&format!("RETRIEVE * FROM ndvi_smooth WHERE AT {}", t0.0))
        .unwrap();
    assert!(history.is_stale(stale_obj));

    // FRESH at t0: the replacement carries `moved`, which violates AT t0,
    // so nothing current satisfies the query — a clean NoData, never an
    // object outside the queried window.
    let err = g
        .retrieve(&format!(
            "RETRIEVE * FROM ndvi_smooth WHERE AT {} FRESH",
            t0.0
        ))
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");
    assert!(err.to_string().contains("FRESH refused"), "{err}");
    // The same FRESH query *at the new instant* serves the replacement.
    let out = g
        .retrieve(&format!(
            "RETRIEVE * FROM ndvi_smooth WHERE AT {} FRESH",
            moved.0
        ))
        .unwrap();
    assert!(!out.any_stale());
    assert!(out.objects.iter().all(|o| o.id != stale_obj));
}

/// Stale hits whose producer cannot be re-fired automatically (here: a
/// query-driven interpolation) are excluded from a FRESH answer instead
/// of failing the whole query; current co-hits are still served.
#[test]
fn fresh_excludes_non_refirable_stale_hits() {
    let (mut g, early, late) = smooth_kernel("");
    // Interpolate ndvi halfway between the two snapshots.
    let t_mid = AbsTime((instant(0).0 + instant(3).0) / 2);
    let interp = g
        .retrieve(&format!("RETRIEVE * FROM ndvi WHERE AT {} DERIVE", t_mid.0))
        .unwrap();
    assert_eq!(interp.method, QueryMethod::Interpolated);
    let interp_obj = interp.objects[0].id;
    // Mutate a bracketing snapshot: the interpolation is stale history.
    g.update_object(
        early,
        vec![(
            "data",
            Value::image(Image::filled(4, 4, PixType::Float8, 7.0)),
        )],
    )
    .unwrap();
    assert!(g.is_stale(interp_obj));

    // Plain retrieval serves it, flagged.
    let history = g
        .retrieve(&format!("RETRIEVE * FROM ndvi WHERE AT {}", t_mid.0))
        .unwrap();
    assert!(history.is_stale(interp_obj));

    // FRESH over a window covering the interpolation AND a base snapshot:
    // the stale interpolation is refused, the current snapshot is served,
    // and the query does not collapse with NotAutoFirable.
    let out = g
        .retrieve(&format!(
            "RETRIEVE * FROM ndvi WHERE BETWEEN {} AND {} FRESH",
            t_mid.0,
            instant(3).0
        ))
        .unwrap();
    assert!(!out.any_stale());
    assert!(out.objects.iter().any(|o| o.id == late));
    assert!(out.objects.iter().all(|o| o.id != interp_obj));

    // FRESH pinned to the interpolation instant alone: everything is
    // refused, and the error says so instead of surfacing NotAutoFirable.
    let err = g
        .retrieve(&format!("RETRIEVE * FROM ndvi WHERE AT {} FRESH", t_mid.0))
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)), "{err}");
    assert!(
        err.to_string().contains("cannot be re-fired automatically"),
        "{err}"
    );
}

/// Concept-wide predicates need agreeing attribute types across member
/// classes — a silent cross-type mismatch must be a definition-time error.
#[test]
fn concept_predicates_require_agreeing_attr_types() {
    let mut g = Gaea::in_memory();
    let prog = parse(
        r#"
CLASS a_obs ( ATTRIBUTES: val = int4; )
CLASS b_obs ( ATTRIBUTES: val = float8; )
DEFINE CONCEPT readings ( MEMBERS: a_obs, b_obs; )
"#,
    )
    .unwrap();
    lower_program(&mut g, &prog).unwrap();
    let err = g
        .retrieve("RETRIEVE * FROM readings WHERE val > 3")
        .unwrap_err();
    assert!(err.to_string().contains("agreeing types"), "{err}");
    // The kernel guards the hand-built path too: an Int4 constant cannot
    // silently compare against b_obs's float8 column.
    let q = Query::concept("readings").filter("val", AttrCmp::Gt, Value::Int4(3));
    let err = g.query(&q).unwrap_err();
    assert!(
        err.to_string().contains("against a"),
        "type mismatch must error, not match nothing: {err}"
    );
}

// ----------------------------------------------------------------------
// Lowering error surface
// ----------------------------------------------------------------------

#[test]
fn lowering_rejects_bad_statements_cleanly() {
    let (mut g, _, _) = smooth_kernel("");
    // Unknown target.
    let err = g.retrieve("RETRIEVE * FROM nowhere").unwrap_err();
    assert!(matches!(err, KernelError::NotFound { .. }), "{err}");
    // Unknown cost vocabulary.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi DERIVE COST cheapest")
        .unwrap_err();
    assert!(err.to_string().contains("oldest"), "{err}");
    // Unknown attribute in WHERE and in the projection.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi WHERE bogus = 1")
        .unwrap_err();
    assert!(err.to_string().contains("bogus"), "{err}");
    let err = g.retrieve("RETRIEVE bogus FROM ndvi").unwrap_err();
    assert!(err.to_string().contains("bogus"), "{err}");
    // Type mismatch between literal and attribute.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi WHERE data = 3")
        .unwrap_err();
    assert!(err.to_string().contains("does not fit"), "{err}");
    // Malformed dates.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi WHERE AT \"1986-13-99\"")
        .unwrap_err();
    assert!(err.to_string().contains("1986-13-99"), "{err}");
    // Duplicate clauses.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi WHERE AT 5 AND BETWEEN 1 AND 2")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    // Syntax errors surface with the offending token underlined.
    let err = g
        .retrieve("RETRIEVE * FROM ndvi WHERE AT nope")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('^'), "underline missing: {msg}");
    assert!(msg.contains("nope"), "{msg}");
    // RETRIEVE statements cannot be lowered as definitions.
    let prog = parse("RETRIEVE * FROM ndvi").unwrap();
    let err = lower_program(&mut g, &prog).unwrap_err();
    assert!(err.to_string().contains("Gaea::retrieve"), "{err}");
}

/// Dates lower onto exact instants: a stored snapshot is retrievable by
/// its calendar day.
#[test]
fn date_literals_resolve_to_instants() {
    let mut g = obs_kernel(&[(1, 0, 0, 0)]);
    // instant(0) is 1988-01-01.
    let out = g
        .retrieve("RETRIEVE * FROM obs WHERE AT \"1988-01-01\"")
        .unwrap();
    assert_eq!(out.objects.len(), 1);
    let err = g
        .retrieve("RETRIEVE * FROM obs WHERE AT \"1988-01-02\"")
        .unwrap_err();
    assert!(matches!(err, KernelError::NoData(_)));
}
