//! Poison-absorption audit for the shared derivation cache.
//!
//! `SharedCache` deliberately absorbs `RwLock` poisoning
//! (`PoisonError::into_inner`): a panicked writer must not wedge every
//! scheduler worker behind a poisoned lock. That policy is only sound if
//! every state a panic can leave behind is one subsequent readers handle
//! correctly — no stale hit served from a half-applied eviction, no
//! entry that can never be invalidated again. These tests hammer exactly
//! that seam: a writer panics while holding the cache's write lock (the
//! lookup validator is the externally reachable panic point), concurrent
//! sessions keep going, and the cache must keep answering consistently.

use gaea::core::kernel::SharedCache;
use gaea::core::{ObjectId, ProcessId, TaskId};
use gaea::store::Oid;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn oid(n: u64) -> ObjectId {
    ObjectId(Oid(n))
}

fn key(pid: u64, input: u64) -> (u64, String) {
    gaea::core::kernel::DerivedCache::canonical_key(
        ProcessId(Oid(pid)),
        &[("x".into(), vec![oid(input)])],
    )
}

/// A writer that panics while holding the write lock leaves the lock
/// usable and the entry it was validating intact: the next lookup sees
/// either the full entry or no entry — never a half-applied eviction
/// served as a hit.
#[test]
fn a_panicking_writer_leaves_the_cache_consistent() {
    let cache = SharedCache::new();
    cache.set_enabled(true);
    let (h, c) = key(7, 1);
    cache.insert(
        h,
        c.clone(),
        TaskId(Oid(500)),
        vec![(oid(1), 3)],
        vec![(oid(10), 4)],
    );

    // The validator runs under the cache's write lock; panicking inside
    // it is the panic-mid-write case the poison-absorption policy must
    // survive.
    let blown = catch_unwind(AssertUnwindSafe(|| {
        cache.lookup_where(h, &c, |_, _| panic!("validator blew up mid-write"));
    }));
    assert!(blown.is_err());

    // The lock is not wedged and the entry is whole: a permissive
    // validator gets the recorded task and outputs back exactly.
    let hit = cache.lookup_where(h, &c, |ins, outs| {
        assert_eq!(ins, [(oid(1), 3)]);
        assert_eq!(outs, [(oid(10), 4)]);
        true
    });
    assert_eq!(hit, Some((TaskId(Oid(500)), vec![oid(10)])));

    // And the entry is still reachable through its reverse-index edges.
    assert_eq!(cache.invalidate_object(oid(1)), 1);
    assert!(cache.lookup_where(h, &c, |_, _| true).is_none());
}

/// Hammer: writers inserting/replacing/invalidating, one thread
/// repeatedly panicking mid-validation, readers checking every hit for
/// internal consistency. Afterwards the cache still round-trips inserts
/// and invalidations exactly.
#[test]
fn hammered_cache_survives_repeated_mid_write_panics() {
    let cache = SharedCache::new();
    cache.set_enabled(true);
    let panics = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    // Writers: insert and replace entries over a small key space so
    // same-hash replacement (the re-linking path) is exercised too.
    for w in 0..2u64 {
        let cache = cache.clone();
        handles.push(thread::spawn(move || {
            for i in 0..400u64 {
                let input = i % 8;
                let (h, c) = key(7 + w, input);
                cache.insert(
                    h,
                    c,
                    TaskId(Oid(1000 + i)),
                    vec![(oid(input), i)],
                    vec![(oid(100 + input), i)],
                );
                if i % 16 == 0 {
                    cache.invalidate_object(oid(input));
                }
            }
        }));
    }

    // The saboteur: panics while holding the write lock, over and over.
    {
        let cache = cache.clone();
        let panics = Arc::clone(&panics);
        handles.push(thread::spawn(move || {
            for i in 0..200u64 {
                // A private key space nothing else invalidates, re-inserted
                // every round, so the panicking validator always fires.
                let (h, c) = key(55, i % 8);
                cache.insert(
                    h,
                    c.clone(),
                    TaskId(Oid(7000 + i)),
                    vec![(oid(500 + i % 8), i)],
                    vec![(oid(600 + i % 8), i)],
                );
                let blown = catch_unwind(AssertUnwindSafe(|| {
                    cache.lookup_where(h, &c, |_, _| panic!("sabotage"));
                }));
                if blown.is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    // Readers: every hit must be internally consistent — the recorded
    // versions agree with each other and the returned outputs match the
    // entry's output list (both drawn from the same task's insert, so a
    // torn entry would break the equality).
    for _ in 0..2 {
        let cache = cache.clone();
        handles.push(thread::spawn(move || {
            for i in 0..400u64 {
                let input = i % 8;
                let (h, c) = key(8, input);
                if let Some((task, outs)) = cache.lookup_where(h, &c, |ins, recorded| {
                    assert_eq!(ins.len(), 1);
                    assert_eq!(recorded.len(), 1);
                    assert_eq!(ins[0].1, recorded[0].1);
                    true
                }) {
                    assert!(task.0 .0 >= 1000);
                    assert_eq!(outs, vec![oid(100 + input)]);
                }
            }
        }));
    }

    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(panics.load(Ordering::Relaxed), 200);

    // Post-hammer: the cache still behaves like a fresh one for a new
    // entry — insert, hit, invalidate, miss.
    let (h, c) = key(99, 42);
    cache.insert(
        h,
        c.clone(),
        TaskId(Oid(9000)),
        vec![(oid(42), 1)],
        vec![(oid(142), 1)],
    );
    assert_eq!(
        cache.lookup_where(h, &c, |_, _| true),
        Some((TaskId(Oid(9000)), vec![oid(142)]))
    );
    assert_eq!(cache.invalidate_object(oid(42)), 1);
    assert!(cache.lookup_where(h, &c, |_, _| true).is_none());
    let stats = cache.stats();
    assert!(stats.invalidations >= 1);
}
